// MinBFT-style state machine replication on trusted counters (Veronese et
// al., "Efficient Byzantine Fault-Tolerance", IEEE TC 2012) — the flagship
// application of the paper's trusted-log class: with a USIG per replica,
// BFT SMR needs only n = 2f+1 replicas and two communication phases,
// versus PBFT's n = 3f+1 and three phases.
//
// Normal operation (view v, primary = replicas[v mod n]):
//
//   client   → all      : REQUEST(cmd)
//   primary  → all      : PREPARE(v, cmd, UI_p)      UI_p from its USIG
//   replica  → all      : COMMIT(v, cmd, UI_p, UI_i) on accepting PREPARE
//   everyone executes cmd once f+1 replicas (the primary's PREPARE counts
//   as its COMMIT) have committed it, in UI_p-counter order; replies to
//   the client, which waits for f+1 matching replies.
//
// The USIG is the non-equivocation mechanism: the primary cannot assign
// one counter value to two commands, so the order it proposes is unique
// by construction; counter gaps can only stall progress (answered by a
// view change), never fork it.
//
// View change (simplified relative to Veronese et al.; see DESIGN.md):
// replicas that time out on a pending request broadcast VIEW-CHANGE(v+1)
// carrying every command they have accepted-but-not-executed or merely
// buffered; the new primary collects f+1 of them, announces NEW-VIEW and
// re-proposes the union in deterministic order. Exactly-once execution is
// preserved by per-client request-id deduplication. The full protocol
// additionally UI-stamps view-change messages and audits counter
// continuity across views, which matters only for Byzantine behaviour
// *during* view changes; our fault-injection tests cover crash faults at
// arbitrary points plus Byzantine equivocation in normal operation.
//
// Crash recovery (DESIGN.md §9): a replica persists a full image —
// execution log, machine snapshot, reply cache, view window, and its
// record of every peer's UI stream position — into its DurableStore at
// checkpoint boundaries and view entries. on_recover reloads the image,
// announces RECOVER (one fresh UI that tells peers where its own stream
// resumes, since counters consumed but never delivered before the crash
// would leave a permanent gap) and catches up past the image via
// STATE-REQUEST/STATE-REPLY checkpoint state transfer with bounded
// timeout-driven retransmission. The durable image only ever lags truth,
// which for MinBFT's sequential-UI rule errs on the safe side: a stale
// window can stall (answered by state transfer and view changes), never
// skip a committed slot.
#pragma once

#include <algorithm>
#include <deque>
#include <set>

#include "agreement/client.h"
#include "agreement/smr.h"
#include "agreement/usig_directory.h"
#include "sim/world.h"
#include "wire/router.h"

namespace unidir::agreement {

/// An accepted slot as archived for (and reported in) view changes:
/// (view, counter) preserves the original proposal order.
struct MinBftVcEntry {
  ViewNum view = 0;
  SeqNum counter = 0;
  Command cmd;

  void encode(serde::Writer& w) const;
  static MinBftVcEntry decode(serde::Reader& r);
};

/// MinBFT's typed wire messages; defined in minbft.cpp, routed by tag
/// through the replica's wire::Router.
namespace minbft_wire {
struct Prepare;
struct Commit;
struct Checkpoint;
struct ViewChange;
struct NewView;
struct StateRequest;
struct StateReply;
struct Recover;
struct BatchPrepare;
struct BatchCommit;
}  // namespace minbft_wire

class MinBftReplica final : public sim::Process {
 public:
  struct Options {
    std::vector<ProcessId> replicas;  // ids, in rank order; includes self
    std::size_t f = 0;
    Time view_change_timeout = 300;
    SeqNum checkpoint_interval = 16;
    /// Commit quorum size; 0 means the MinBFT default of f+1. Larger
    /// quorums (up to n) are the conservative-quorum ablation: more
    /// certainty per slot, more latency, and liveness only while that
    /// many replicas are responsive.
    std::size_t commit_quorum = 0;
    /// Max client requests amortized into one attested slot. With the
    /// defaults (batch_size = 1, pipeline_depth = 1) the replica runs the
    /// original one-command-per-slot wire protocol bit-for-bit; any other
    /// setting switches the proposal path to BATCH-PREPARE/BATCH-COMMIT,
    /// where one UI signs the whole batch digest.
    std::size_t batch_size = 1;
    /// How long (ticks) a non-empty partial batch may wait for more
    /// requests before the primary flushes it anyway. 0 = never hold.
    Time batch_timeout = 4;
    /// Max proposed-but-unexecuted slots the primary keeps in flight.
    std::size_t pipeline_depth = 1;
  };

  MinBftReplica(Options options, UsigDirectory& usigs,
                std::unique_ptr<StateMachine> machine);

  // -- introspection ---------------------------------------------------------
  ViewNum view() const { return view_; }
  bool is_primary() const { return primary_of(view_) == id(); }
  const ExecutionLog& execution_log() const { return log_; }
  std::uint64_t executed_count() const { return log_.size(); }
  crypto::Digest state_digest() const { return machine_->digest(); }
  /// Highest execution count agreed stable via checkpoints.
  std::uint64_t stable_checkpoint() const { return stable_checkpoint_; }
  std::uint64_t view_changes_seen() const { return view_changes_; }
  /// Times this replica came back from a crash.
  std::uint64_t recoveries() const { return recoveries_; }
  /// Slots retained for view-change reports (pruned below stable).
  std::size_t vc_archive_size() const { return vc_archive_.size(); }

  /// Builds a signed PREPARE wire message outside any replica — exposed so
  /// adversarial tests can drive Byzantine primaries by hand.
  static Bytes encode_prepare_for_test(UsigDirectory& usigs, ProcessId as,
                                       ViewNum view, const Command& cmd);
  /// Batched analogue of encode_prepare_for_test: one UI over the batch
  /// digest, so tests can plant batches (including malformed ones).
  static Bytes encode_batch_prepare_for_test(UsigDirectory& usigs,
                                             ProcessId as, ViewNum view,
                                             const std::vector<Command>& cmds);

 protected:
  void on_start() override;
  void on_recover(sim::DurableStore& durable) override;

 private:
  struct Slot {
    std::vector<Command> cmds;  // the batch, in execution order (size 1 unbatched)
    trusted::UniqueIdentifier primary_ui;
    std::set<ProcessId> committers;  // includes the primary and self
    bool executed = false;
    Time accepted_at = 0;  // when this replica first saw the proposal
  };

  bool batched() const {
    return options_.batch_size > 1 || options_.pipeline_depth > 1;
  }

  ProcessId primary_of(ViewNum v) const {
    return options_.replicas[static_cast<std::size_t>(v) %
                             options_.replicas.size()];
  }
  std::size_t n() const { return options_.replicas.size(); }
  bool is_replica(ProcessId p) const;

  // message handling
  void on_request(ProcessId from, Command cmd);
  void handle_prepare(ProcessId from, minbft_wire::Prepare p);
  void handle_commit(ProcessId from, minbft_wire::Commit c);
  void handle_batch_prepare(ProcessId from, minbft_wire::BatchPrepare p);
  void handle_batch_commit(ProcessId from, minbft_wire::BatchCommit c);

  /// The sequential-UI rule of MinBFT: a receiver processes each sender's
  /// UI-stamped messages strictly in counter order. `action` runs when
  /// `counter` becomes due (immediately if already processed — handlers
  /// are idempotent); future counters buffer. Without this rule a
  /// Byzantine primary could fork the log by showing different counters
  /// to different backups.
  void sequenced(ProcessId sender, SeqNum counter,
                 std::function<void()> action);

  /// Runs `action` now if `view` is current and stable; buffers it until
  /// enter_view(view) if the view is in the future (or being changed to);
  /// drops it if the view is past. NEW-VIEW and the first PREPAREs of a
  /// view race on an asynchronous network; without this, a replica that
  /// sees the PREPARE first would silently lose it.
  void when_in_view(ViewNum view, std::function<void()> action);
  void handle_checkpoint(ProcessId from, minbft_wire::Checkpoint cp);
  void handle_view_change(ProcessId from, minbft_wire::ViewChange vc);
  void handle_new_view(ProcessId from, minbft_wire::NewView nv);
  void handle_state_request(ProcessId from, minbft_wire::StateRequest req);
  void handle_state_reply(ProcessId from, minbft_wire::StateReply rep);
  void handle_recover(ProcessId from, minbft_wire::Recover rc);

  /// Forces `sender`'s processed-counter frontier up to `to` (from a
  /// RECOVER announcement or a state-transfer snapshot) and runs whatever
  /// buffered actions became due. Counters at or below the new frontier
  /// run through the idempotent already-due path when they arrive.
  void raise_ui_high(ProcessId sender, SeqNum to);
  void drain_ui(ProcessId sender);

  // crash recovery (see DESIGN.md §9)
  void persist();
  /// Prunes the execution-log prefix, the view-change archive, and dead
  /// checkpoint votes below the stable checkpoint.
  void prune_stable();
  void note_checkpoint_vote(std::uint64_t executed, const Bytes& digest,
                            ProcessId voter);
  void install_bundle(const minbft_wire::StateReply& b);
  bool needs_state() const;
  void begin_state_sync();
  void send_state_request();
  void arm_state_retry();

  // normal path
  void propose(const Command& cmd);
  /// Batched proposal path (see Options::batch_size): queue admission,
  /// flush policy (full batch / ripe timeout / pipeline room), and the
  /// BATCH-PREPARE broadcast itself.
  void enqueue_batch(const Command& cmd);
  void maybe_flush_batch();
  void propose_batch(std::vector<Command> cmds);
  /// Proposed-but-unexecuted slots (the primary's in-flight window).
  std::size_t inflight_slots() const;
  bool accept_slot(ViewNum view, const std::vector<Command>& cmds,
                   const trusted::UniqueIdentifier& primary_ui);
  /// Casts and broadcasts this replica's COMMIT for an accepted slot
  /// (no-op for the primary, whose PREPARE is its vote).
  void maybe_send_own_commit(SeqNum primary_counter);
  void try_execute();
  void execute(Slot& slot);
  void reply_to(const Command& cmd, const Bytes& result);
  void maybe_checkpoint();

  // view change
  void arm_request_timer(const Command& cmd);
  void start_view_change(ViewNum target);
  /// Gives up an unsupported view-change attempt and rejoins the current
  /// view (replaying the messages buffered during the attempt).
  void abandon_view_change();
  void maybe_assume_primacy(ViewNum target);
  void enter_view(ViewNum v);

  Options options_;
  UsigDirectory& usigs_;
  std::unique_ptr<StateMachine> machine_;
  Bytes initial_snapshot_;  // pristine machine state, for blank recoveries

  /// Decode boundaries: client requests, and replica-to-replica protocol
  /// traffic (with a replicas-only admission filter).
  wire::Router request_router_;
  wire::Router protocol_router_;

  ViewNum view_ = 0;
  bool in_view_change_ = false;
  ViewNum vc_target_ = 0;
  // Consecutive failed view-change attempts (escalations + abandonments)
  // since the last successful view entry. Doubles the view-change timers
  // up to 64x so repeated failed views probe ever more patiently instead
  // of re-firing at a fixed period into a cluster that needs longer to
  // heal (e.g. a partitioned or restarting quorum).
  std::uint32_t vc_backoff_ = 0;
  Time vc_timeout() const {
    return options_.view_change_timeout
           << std::min<std::uint32_t>(vc_backoff_, 6);
  }

  // Current-view ordering state.
  std::map<SeqNum, Slot> slots_;        // primary UI counter -> slot
  SeqNum view_base_counter_ = 0;        // first accepted counter this view
  SeqNum next_exec_counter_ = 0;        // next counter to execute (0=unset)

  // Sequential-UI tracking: highest processed counter per sender, and
  // actions waiting for the gap to close.
  std::map<ProcessId, SeqNum> ui_high_;
  std::map<ProcessId, std::map<SeqNum, std::vector<std::function<void()>>>>
      ui_waiting_;

  // Actions waiting for a future view to start.
  std::map<ViewNum, std::vector<std::function<void()>>> view_waiting_;

  // Client-facing state.
  std::map<std::pair<ProcessId, std::uint64_t>, Command> pending_;
  ExecutionDeduper dedup_;
  ExecutionLog log_;

  // Batched-mode primary state: admitted-but-unproposed requests in
  // arrival order, with key sets for O(log n) duplicate admission checks.
  std::deque<Command> batch_queue_;
  std::set<std::pair<ProcessId, std::uint64_t>> queued_keys_;
  std::set<std::pair<ProcessId, std::uint64_t>> slotted_keys_;
  bool batch_ripe_ = false;         // queue head has waited batch_timeout
  bool batch_timer_armed_ = false;
  bool batch_flushing_ = false;     // re-entrancy guard for the flush loop

  // Checkpoints.
  std::uint64_t stable_checkpoint_ = 0;
  std::map<std::uint64_t, std::map<Bytes, std::set<ProcessId>>> cp_votes_;

  // View change bookkeeping.
  struct VcReport {
    std::vector<MinBftVcEntry> entries;
    std::vector<Command> pending;
    std::uint64_t stable = 0;  // reporter's stable checkpoint
  };
  /// Every accepted slot not yet covered by a stable checkpoint.
  std::vector<MinBftVcEntry> vc_archive_;
  std::map<ViewNum, std::map<ProcessId, VcReport>> vc_msgs_;
  std::uint64_t view_changes_ = 0;

  // Crash-recovery state.
  std::uint64_t recoveries_ = 0;
  /// Replicas below a NEW-VIEW's announced execution count must not
  /// execute *fresh* commands (which would append to the log at the wrong
  /// index) until state transfer raises the log to the floor; dedup'd
  /// re-executions stay allowed.
  std::uint64_t exec_floor_ = 0;
  /// Target view whose primacy we postponed until state transfer brings us
  /// to the reported stable frontier (archives are pruned below it).
  std::optional<ViewNum> deferred_primacy_;
  bool state_probe_ = false;       // a state-transfer round is in flight
  unsigned state_attempts_ = 0;    // retransmissions used this round

  // Observability anchors: virtual-time starts for in-progress episodes,
  // recorded into World::metrics() when the episode ends.
  Time vc_started_at_ = 0;          // first start_view_change of an episode
  Time state_sync_started_at_ = 0;  // begin_state_sync of the current round
  Time last_checkpoint_at_ = 0;     // previous stable-checkpoint instant
};

}  // namespace unidir::agreement
