// Example replicated state machines: a key-value store and a counter.
//
// Operation wire formats are tiny command languages; both machines are
// deterministic, as SMR requires.
#pragma once

#include <map>
#include <string>

#include "agreement/smr.h"

namespace unidir::agreement {

/// Key-value store. Ops:
///   PUT key value → previous value (empty if none)
///   GET key       → value (empty if none)
///   DEL key       → previous value
class KvStateMachine final : public StateMachine {
 public:
  static Bytes put_op(std::string_view key, std::string_view value);
  static Bytes get_op(std::string_view key);
  static Bytes del_op(std::string_view key);

  Bytes apply(const Bytes& op) override;
  crypto::Digest digest() const override;
  Bytes snapshot() const override;
  void restore(const Bytes& snap) override;

  std::size_t size() const { return table_.size(); }

 private:
  std::map<std::string, std::string> table_;
};

/// A counter supporting ADD(delta) → new value, and READ → value.
class CounterStateMachine final : public StateMachine {
 public:
  static Bytes add_op(std::int64_t delta);
  static Bytes read_op();

  Bytes apply(const Bytes& op) override;
  crypto::Digest digest() const override;
  Bytes snapshot() const override;
  void restore(const Bytes& snap) override;

  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

}  // namespace unidir::agreement
