// Shared scaffolding for the state-machine-replication protocols
// (MinBFT and PBFT): commands, replies, the state-machine interface, and
// the execution log that consistency checkers compare across replicas.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/serde.h"
#include "common/types.h"
#include "crypto/sha256.h"
#include "wire/message.h"

namespace unidir::agreement {

/// A client operation to be totally ordered and executed.
struct Command {
  static constexpr wire::MsgDesc kDesc{1, "smr-command"};

  ProcessId client = kNoProcess;
  std::uint64_t request_id = 0;  // per-client, strictly increasing
  Bytes op;

  bool operator==(const Command&) const = default;

  /// Identity for exactly-once execution.
  std::pair<ProcessId, std::uint64_t> key() const {
    return {client, request_id};
  }

  void encode(serde::Writer& w) const;
  static Command decode(serde::Reader& r);
};

struct Reply {
  static constexpr wire::MsgDesc kDesc{1, "smr-reply"};

  std::uint64_t request_id = 0;
  Bytes result;

  void encode(serde::Writer& w) const;
  static Reply decode(serde::Reader& r);
};

/// The replicated application. Determinism is the application's
/// obligation: equal op sequences must produce equal results and digests.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual Bytes apply(const Bytes& op) = 0;
  /// Digest of the current state (checkpoints compare these).
  virtual crypto::Digest digest() const = 0;
  /// Serializes the full state, for checkpoints that survive a restart and
  /// for checkpoint-based state transfer between replicas.
  virtual Bytes snapshot() const = 0;
  /// Replaces the state with a previously taken snapshot.
  virtual void restore(const Bytes& snap) = 0;
};

/// What a replica executed, in order — the object of the SMR safety
/// property: correct replicas' execution logs must be prefix-consistent.
struct ExecutionRecord {
  Command command;
  Bytes result;

  bool operator==(const ExecutionRecord&) const = default;

  void encode(serde::Writer& w) const;
  static ExecutionRecord decode(serde::Reader& r);
};

/// A replica's execution history with a prunable prefix. Checkpointing
/// discards records below the stable checkpoint; what remains is the base
/// count, a chained digest over the discarded prefix
/// (d_{i+1} = SHA-256(d_i || encode(record_i)), d_0 = zeros) and the
/// explicit suffix. Two logs can therefore still be compared for prefix
/// consistency after pruning: equal counts imply equal chain digests.
class ExecutionLog {
 public:
  void append(ExecutionRecord rec);

  /// Total records ever executed (pruned prefix included).
  std::uint64_t size() const { return base_ + records_.size(); }
  bool empty() const { return size() == 0; }
  /// Records below this index have been pruned away.
  std::uint64_t base() const { return base_; }
  /// The retained suffix: records [base, size).
  const std::vector<ExecutionRecord>& records() const { return records_; }
  /// Record at absolute index; requires base <= index < size.
  const ExecutionRecord& at(std::uint64_t index) const;

  /// Chain digest over the first `count` records; requires
  /// base <= count <= size.
  crypto::Digest digest_through(std::uint64_t count) const;

  /// Discards records below `count` (clamped to [base, size]), folding
  /// them into the chain digest.
  void prune_to(std::uint64_t count);

  void encode(serde::Writer& w) const;
  static ExecutionLog decode(serde::Reader& r);

 private:
  std::uint64_t base_ = 0;
  crypto::Digest base_digest_{};  // chain digest through base_
  std::vector<ExecutionRecord> records_;
  std::vector<crypto::Digest> chain_;  // chain_[k] = digest through base_+k+1
};

/// Checks prefix consistency of execution logs across correct replicas:
/// over every pair's comparable range [max(bases), min(sizes)) the chain
/// digests at the range start and the records inside it must agree.
/// Disjoint ranges (one replica pruned past the other's head) are vacuously
/// consistent. Returns a description of the first divergence, or nullopt.
std::optional<std::string> check_execution_consistency(
    const std::vector<std::pair<ProcessId, const ExecutionLog*>>& logs);

/// Exactly-once execution helper shared by both protocols: remembers every
/// executed (client, request_id) with its reply, so re-proposals after
/// view changes and client resends re-send the cached result instead of
/// re-applying. Supports pipelined clients (multiple outstanding request
/// ids), at the cost of unpruned per-client reply history — acceptable for
/// the bounded executions this library runs (see DESIGN.md §7).
/// Serializable: the reply cache is part of a replica's durable checkpoint
/// and of state-transfer bundles.
class ExecutionDeduper {
 public:
  /// The cached reply if this exact command was executed before.
  std::optional<Bytes> lookup(const Command& cmd) const;
  void record(const Command& cmd, const Bytes& result);

  /// Every (client, request_id) with a cached reply, in client order. The
  /// state-transfer install witness ("smr-install") publishes these so the
  /// batch-atomicity checker can tell transferred effects from skipped
  /// executions.
  std::vector<std::pair<ProcessId, std::uint64_t>> keys() const;

  void encode(serde::Writer& w) const;
  static ExecutionDeduper decode(serde::Reader& r);

 private:
  std::map<ProcessId, std::map<std::uint64_t, Bytes>> clients_;
};

/// The protocol-agnostic core of a checkpoint state-transfer reply: the
/// responder's pruned execution log, matching machine snapshot and reply
/// cache. Protocol wire messages wrap this with their own view/window
/// coordinates and a signature.
struct StateBundle {
  ExecutionLog log;
  Bytes machine_snapshot;
  ExecutionDeduper dedup;

  void encode(serde::Writer& w) const;
  static StateBundle decode(serde::Reader& r);
};

}  // namespace unidir::agreement
