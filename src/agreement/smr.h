// Shared scaffolding for the state-machine-replication protocols
// (MinBFT and PBFT): commands, replies, the state-machine interface, and
// the execution log that consistency checkers compare across replicas.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/serde.h"
#include "common/types.h"
#include "crypto/sha256.h"
#include "wire/message.h"

namespace unidir::agreement {

/// A client operation to be totally ordered and executed.
struct Command {
  static constexpr wire::MsgDesc kDesc{1, "smr-command"};

  ProcessId client = kNoProcess;
  std::uint64_t request_id = 0;  // per-client, strictly increasing
  Bytes op;

  bool operator==(const Command&) const = default;

  /// Identity for exactly-once execution.
  std::pair<ProcessId, std::uint64_t> key() const {
    return {client, request_id};
  }

  void encode(serde::Writer& w) const;
  static Command decode(serde::Reader& r);
};

struct Reply {
  static constexpr wire::MsgDesc kDesc{1, "smr-reply"};

  std::uint64_t request_id = 0;
  Bytes result;

  void encode(serde::Writer& w) const;
  static Reply decode(serde::Reader& r);
};

/// The replicated application. Determinism is the application's
/// obligation: equal op sequences must produce equal results and digests.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual Bytes apply(const Bytes& op) = 0;
  /// Digest of the current state (checkpoints compare these).
  virtual crypto::Digest digest() const = 0;
};

/// What a replica executed, in order — the object of the SMR safety
/// property: correct replicas' execution logs must be prefix-consistent.
struct ExecutionRecord {
  Command command;
  Bytes result;

  bool operator==(const ExecutionRecord&) const = default;
};

/// Checks prefix consistency of execution logs across correct replicas.
/// Returns a description of the first divergence, or nullopt.
std::optional<std::string> check_execution_consistency(
    const std::vector<std::pair<ProcessId,
                                const std::vector<ExecutionRecord>*>>& logs);

/// Exactly-once execution helper shared by both protocols: remembers every
/// executed (client, request_id) with its reply, so re-proposals after
/// view changes and client resends re-send the cached result instead of
/// re-applying. Supports pipelined clients (multiple outstanding request
/// ids), at the cost of unpruned per-client reply history — acceptable for
/// the bounded executions this library runs (see DESIGN.md §7).
class ExecutionDeduper {
 public:
  /// The cached reply if this exact command was executed before.
  std::optional<Bytes> lookup(const Command& cmd) const;
  void record(const Command& cmd, const Bytes& result);

 private:
  std::map<ProcessId, std::map<std::uint64_t, Bytes>> clients_;
};

}  // namespace unidir::agreement
