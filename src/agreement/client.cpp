#include "agreement/client.h"

#include "common/check.h"

namespace unidir::agreement {

SmrClient::SmrClient(Options options)
    : options_(std::move(options)), reply_router_(*this, kClientReplyCh) {
  UNIDIR_REQUIRE(!options_.replicas.empty());
  UNIDIR_REQUIRE(options_.f + 1 <= options_.replicas.size());
  UNIDIR_REQUIRE(options_.max_outstanding >= 1);
  reply_router_.on<Reply>([this](ProcessId from, Reply reply) {
    on_reply(from, std::move(reply));
  });
}

void SmrClient::on_start() {
  started_ = true;
  issue_ready();
}

void SmrClient::submit(Bytes op, DoneFn done) {
  queue_.push_back({std::move(op), std::move(done)});
  if (started_) issue_ready();
}

void SmrClient::issue_ready() {
  while (!queue_.empty() && in_flight_.size() < options_.max_outstanding) {
    QueuedOp next = std::move(queue_.front());
    queue_.pop_front();
    InFlight req;
    req.cmd.client = id();
    req.cmd.request_id = ++next_request_id_;
    req.cmd.op = std::move(next.op);
    req.done = std::move(next.done);
    req.issued_at = world().now();
    req.attempts = 1;
    const std::uint64_t rid = req.cmd.request_id;
    send_request(req.cmd);
    in_flight_.emplace(rid, std::move(req));
    arm_resend(rid);
  }
}

void SmrClient::issue_after_think() {
  if (options_.think_ticks == 0) {
    issue_ready();
    return;
  }
  // A timer per completion is fine: issue_ready() re-checks queue depth
  // and pipeline capacity, so a stale wake-up is a no-op.
  set_timer(options_.think_ticks, [this] { issue_ready(); });
}

void SmrClient::send_request(const Command& cmd) {
  wire::multicast(world(), id(), options_.replicas, kClientRequestCh, cmd);
}

void SmrClient::arm_resend(std::uint64_t request_id) {
  if (options_.resend_timeout == 0) return;
  const InFlight& req = in_flight_.at(request_id);
  if (options_.max_attempts != 0 && req.attempts >= options_.max_attempts) {
    // Out of attempts: surface the abandonment instead of waiting forever
    // on a quorum that may never come back.
    // The done callback is only for results; abandonment is visible via
    // gave_up() and the "smr-gave-up" output record.
    in_flight_.erase(request_id);
    ++gave_up_;
    world().metrics().add("client.gave_up");
    world().tracer().instant("request-gave-up", "client", id(), world().now(),
                             "request_id", request_id);
    output("smr-gave-up", serde::encode(request_id));
    issue_after_think();
    return;
  }
  // Exponential backoff (capped shifts keep the arithmetic sane): replicas
  // that are merely slow get room, dead ones stop eating bandwidth.
  const std::size_t shift = std::min<std::size_t>(req.attempts - 1, 10);
  const Time jitter = options_.resend_jitter == 0
                          ? 0
                          : rng().below(options_.resend_jitter + 1);
  set_timer((options_.resend_timeout << shift) + jitter, [this, request_id] {
    auto it = in_flight_.find(request_id);
    if (it == in_flight_.end()) return;  // completed meanwhile
    ++it->second.attempts;
    send_request(it->second.cmd);
    arm_resend(request_id);
  });
}

void SmrClient::on_reply(ProcessId from, Reply reply) {
  auto it = in_flight_.find(reply.request_id);
  if (it == in_flight_.end()) return;
  InFlight& req = it->second;
  std::set<ProcessId>& voters = req.votes[reply.result];
  voters.insert(from);
  if (voters.size() < options_.f + 1) return;

  // f+1 matching replies: at least one from a correct replica.
  ++completed_;
  const Time latency = world().now() - req.issued_at;
  latencies_.push_back(latency);
  world().metrics().histogram("client.latency_ticks").record(latency);
  world().tracer().complete("request", "client", id(), req.issued_at, latency,
                            "request_id", reply.request_id, "attempts",
                            req.attempts);
  output("smr-complete", serde::encode(reply.request_id));
  DoneFn done = std::move(req.done);
  const Bytes result = reply.result;
  in_flight_.erase(it);
  issue_after_think();
  if (done) done(result);
}

}  // namespace unidir::agreement
