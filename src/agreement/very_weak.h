// Very weak Byzantine agreement from one unidirectional round (n > f) —
// the paper's algorithm:
//
//   send v to all; wait until the end of the round;
//   if any received value differs from v, commit ⊥; else commit v.
//
// Agreement (modulo ⊥): if correct p commits v ≠ ⊥, then for any correct
// q, either p received q's input (so q sent v) or — by unidirectionality —
// q received p's v and so commits v or ⊥. Validity: all-correct,
// same-input executions never see a differing value.
#pragma once

#include <functional>
#include <optional>

#include "common/bytes.h"
#include "rounds/round_driver.h"
#include "sim/world.h"

namespace unidir::agreement {

class VeryWeakAgreement {
 public:
  /// `driver` must be a dedicated unidirectional round driver.
  VeryWeakAgreement(sim::Process& host, rounds::RoundDriver& driver);

  using CommitFn = std::function<void(const std::optional<Bytes>&)>;

  /// Runs the one-round protocol with input `v`. `on_commit` receives the
  /// committed value, or nullopt for ⊥.
  void run(Bytes input, CommitFn on_commit);

  bool committed() const { return committed_; }
  const std::optional<Bytes>& value() const { return value_; }

 private:
  sim::Process& host_;
  rounds::RoundDriver& driver_;
  bool committed_ = false;
  std::optional<Bytes> value_;
};

}  // namespace unidir::agreement
