// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded, so the logger is too.
// Logging defaults to Warn so tests and benches stay quiet; examples raise
// the level to show protocol traces.
#pragma once

#include <sstream>
#include <string>

namespace unidir::log {

enum class Level { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global log threshold; messages below it are discarded.
Level threshold();
void set_threshold(Level level);

/// Emits a line to stderr. Prefer the UNIDIR_LOG macro below.
void emit(Level level, const char* file, int line, const std::string& msg);

const char* level_name(Level level);

}  // namespace unidir::log

#define UNIDIR_LOG(level, expr)                                          \
  do {                                                                   \
    if ((level) >= ::unidir::log::threshold()) {                         \
      std::ostringstream unidir_log_os;                                  \
      unidir_log_os << expr; /* NOLINT */                                \
      ::unidir::log::emit((level), __FILE__, __LINE__,                   \
                          unidir_log_os.str());                          \
    }                                                                    \
  } while (false)

#define UNIDIR_TRACE(expr) UNIDIR_LOG(::unidir::log::Level::Trace, expr)
#define UNIDIR_DEBUG(expr) UNIDIR_LOG(::unidir::log::Level::Debug, expr)
#define UNIDIR_INFO(expr) UNIDIR_LOG(::unidir::log::Level::Info, expr)
#define UNIDIR_WARN(expr) UNIDIR_LOG(::unidir::log::Level::Warn, expr)
#define UNIDIR_ERROR(expr) UNIDIR_LOG(::unidir::log::Level::Error, expr)
