#include "common/payload.h"

namespace unidir {

const Bytes& Payload::empty_bytes() {
  static const Bytes empty;
  return empty;
}

const std::uint64_t Payload::kFnvEmpty = fnv1a64(ByteSpan{});

}  // namespace unidir
