#include "common/serde.h"

namespace unidir::serde {

void Writer::uvarint(std::uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::svarint(std::int64_t v) {
  // Zig-zag: maps small-magnitude signed values to small unsigned values.
  const auto u = static_cast<std::uint64_t>(v);
  uvarint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

namespace {
// A uvarint occupies at most 10 bytes; reserving prefix + payload in one
// step caps any length-prefixed append at a single reallocation.
constexpr std::size_t kMaxVarintSize = 10;
}  // namespace

void Writer::bytes(ByteSpan data) {
  ensure(kMaxVarintSize + data.size());
  uvarint(data.size());
  raw(data);
}

void Writer::str(std::string_view s) {
  ensure(kMaxVarintSize + s.size());
  uvarint(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
}

void Writer::raw(ByteSpan data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void Reader::need(std::size_t n) const {
  if (remaining() < n)
    throw DecodeError("truncated input: need " + std::to_string(n) +
                      " byte(s) at offset " + std::to_string(pos_) + " of " +
                      std::to_string(data_.size()));
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

bool Reader::boolean() {
  std::uint8_t v = u8();
  if (v > 1) throw DecodeError("invalid boolean");
  return v == 1;
}

std::uint64_t Reader::uvarint() {
  std::uint64_t out = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    std::uint8_t b = u8();
    out |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      // Reject non-canonical encodings (trailing 0x80-chained zero bytes),
      // so each value has exactly one encoding — required for signing.
      if (b == 0 && shift != 0) throw DecodeError("non-canonical varint");
      return out;
    }
  }
  throw DecodeError("varint too long");
}

std::int64_t Reader::svarint() {
  std::uint64_t u = uvarint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

Bytes Reader::bytes() {
  std::uint64_t n = uvarint();
  need(static_cast<std::size_t>(n));
  return raw(static_cast<std::size_t>(n));
}

std::string Reader::str() {
  Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void Reader::expect_done() const {
  if (!done())
    throw DecodeError("trailing bytes after value: " +
                      std::to_string(remaining()) + " byte(s) left at offset " +
                      std::to_string(pos_) + " of " +
                      std::to_string(data_.size()));
}

}  // namespace unidir::serde
