// Refcounted immutable message payload (copy-on-write view over Bytes).
//
// Every message the network carries used to be a plain Bytes value, deep-
// copied on duplication, on hold, on transcript recording and on replay
// bookkeeping. A Payload shares one immutable buffer between all of those
// consumers: copying a Payload bumps a refcount; the bytes themselves are
// copied only when someone actually mutates them (mutate()). The content
// hash used by the explorer's schedule keys is computed once per buffer and
// cached alongside it.
//
// Thread-safety: the refcount is atomic (shared_ptr), so Payloads may be
// *owned* by different threads — the ParallelRunner relies on this only in
// the trivial sense that each simulated world is confined to one thread.
// The lazy hash cache is NOT synchronized; two threads must not race fnv()
// on Payloads sharing one buffer. World-confined payloads never do.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/bytes.h"

namespace unidir {

class Payload {
 public:
  Payload() = default;

  /// Wraps (by value + move — the canonical Bytes sink). Implicit, so call
  /// sites that used to hand a Bytes to the network/transcript still work.
  Payload(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : data_(bytes.empty() ? nullptr
                            : std::make_shared<Shared>(std::move(bytes))) {}

  static Payload copy_of(ByteSpan data) {
    return Payload(Bytes(data.begin(), data.end()));
  }

  const Bytes& bytes() const { return data_ ? data_->bytes : empty_bytes(); }
  ByteSpan span() const { return bytes(); }
  operator ByteSpan() const { return bytes(); }  // NOLINT: payloads are bytes

  std::size_t size() const { return data_ ? data_->bytes.size() : 0; }
  bool empty() const { return size() == 0; }
  const std::uint8_t* data() const { return bytes().data(); }
  std::uint8_t operator[](std::size_t i) const { return data_->bytes[i]; }

  /// Content hash (FNV-1a 64), computed once per buffer and cached.
  std::uint64_t fnv() const {
    if (!data_) return kFnvEmpty;
    if (!data_->fnv_cached) {
      data_->fnv = fnv1a64(data_->bytes);
      data_->fnv_cached = true;
    }
    return data_->fnv;
  }

  /// Copy-on-write access: returns mutable bytes, detaching from any other
  /// Payload sharing this buffer first. Invalidates the cached hash.
  Bytes& mutate() {
    if (!data_) {
      data_ = std::make_shared<Shared>(Bytes{});
    } else if (data_.use_count() > 1) {
      data_ = std::make_shared<Shared>(Bytes(data_->bytes));
    }
    data_->fnv_cached = false;
    return data_->bytes;
  }

  // -- diagnostics (tests, benchmarks) --------------------------------------
  /// Number of Payloads sharing this buffer (0 for the empty payload).
  long use_count() const { return data_ ? data_.use_count() : 0; }
  bool shares_buffer_with(const Payload& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

  /// Content equality; identical buffers compare without touching bytes.
  friend bool operator==(const Payload& a, const Payload& b) {
    return a.data_ == b.data_ || a.bytes() == b.bytes();
  }
  friend bool operator==(const Payload& a, const Bytes& b) {
    return a.bytes() == b;
  }

 private:
  struct Shared {
    explicit Shared(Bytes b) : bytes(std::move(b)) {}
    Bytes bytes;
    std::uint64_t fnv = 0;
    bool fnv_cached = false;
  };

  static const Bytes& empty_bytes();
  static const std::uint64_t kFnvEmpty;

  std::shared_ptr<Shared> data_;
};

}  // namespace unidir
