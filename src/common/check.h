// Invariant checking macros.
//
// UNIDIR_CHECK is for internal invariants: a failure indicates a bug in this
// library, and throws unidir::InternalError. UNIDIR_REQUIRE is for caller
// preconditions and throws std::invalid_argument. Both are always enabled:
// this library is used to *validate* distributed protocols, so silent
// undefined behaviour is never acceptable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace unidir {

/// Thrown when an internal invariant of the library is violated.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'R') throw std::invalid_argument(os.str());
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace unidir

#define UNIDIR_CHECK(expr)                                                   \
  do {                                                                       \
    if (!(expr))                                                             \
      ::unidir::detail::check_failed("CHECK", #expr, __FILE__, __LINE__, ""); \
  } while (false)

#define UNIDIR_CHECK_MSG(expr, msg)                                       \
  do {                                                                    \
    if (!(expr))                                                          \
      ::unidir::detail::check_failed("CHECK", #expr, __FILE__, __LINE__, \
                                     (msg));                              \
  } while (false)

#define UNIDIR_REQUIRE(expr)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::unidir::detail::check_failed("REQUIRE", #expr, __FILE__, __LINE__, \
                                     "");                                 \
  } while (false)

#define UNIDIR_REQUIRE_MSG(expr, msg)                                       \
  do {                                                                      \
    if (!(expr))                                                            \
      ::unidir::detail::check_failed("REQUIRE", #expr, __FILE__, __LINE__, \
                                     (msg));                                \
  } while (false)
