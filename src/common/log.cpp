#include "common/log.h"

#include <cstdio>

namespace unidir::log {

namespace {
Level g_threshold = Level::Warn;
}  // namespace

Level threshold() { return g_threshold; }

void set_threshold(Level level) { g_threshold = level; }

const char* level_name(Level level) {
  switch (level) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

void emit(Level level, const char* file, int line, const std::string& msg) {
  // Strip directories from the file path for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p)
    if (*p == '/') base = p + 1;
  std::fprintf(stderr, "[%s] %s:%d %s\n", level_name(level), base, line,
               msg.c_str());
}

}  // namespace unidir::log
