// Compact deterministic binary serialization.
//
// Every protocol message in the library is encoded with this codec before it
// is sent, signed or hashed. Determinism matters: signatures are computed
// over the encoding, so two semantically equal values must encode to the
// same bytes. Integers are encoded as LEB128 varints; byte strings are
// length-prefixed; containers are size-prefixed and element-ordered.
//
// User types participate by providing member functions
//     void encode(Writer&) const;
//     static T decode(Reader&);
// or via the free-function customization point `serde_encode` /
// `serde_decode` found by ADL (used for third-party and enum types).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace unidir::serde {

/// Thrown by Reader when the input is truncated or malformed. Protocols
/// treat this as "message from a Byzantine process": they catch it at the
/// deserialization boundary and drop the message.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { out_.push_back(v); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Unsigned LEB128.
  void uvarint(std::uint64_t v);
  /// Zig-zag signed varint.
  void svarint(std::int64_t v);

  /// Length-prefixed raw bytes.
  void bytes(ByteSpan data);
  void str(std::string_view s);

  /// Raw bytes with no length prefix (caller knows the length).
  void raw(ByteSpan data);

  /// Pre-sizes the buffer for `additional` more bytes. Encoders that know
  /// their payload size call this once so the appends below never
  /// reallocate; bytes()/str() also reserve internally before appending.
  void reserve(std::size_t additional) { out_.reserve(out_.size() + additional); }

  const Bytes& buffer() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  /// Internal growth: like reserve(), but never shrinks the doubling
  /// schedule — repeated small appends stay amortized O(1) instead of
  /// reallocating to each exact size.
  void ensure(std::size_t additional) {
    const std::size_t need = out_.size() + additional;
    if (need > out_.capacity())
      out_.reserve(std::max(need, out_.capacity() * 2));
  }

  Bytes out_;
};

class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  std::uint8_t u8();
  bool boolean();
  std::uint64_t uvarint();
  std::int64_t svarint();
  Bytes bytes();
  std::string str();
  Bytes raw(std::size_t n);

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  /// Byte offset of the next read; decode boundaries use it for error
  /// context.
  std::size_t position() const { return pos_; }

  /// Throws DecodeError unless all input has been consumed. Call at the end
  /// of a message decode to reject trailing garbage.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  ByteSpan data_;
  std::size_t pos_ = 0;
};

// ---- generic encode/decode ------------------------------------------------

template <typename T>
concept MemberEncodable = requires(const T& t, Writer& w) { t.encode(w); };

template <typename T>
concept MemberDecodable = requires(Reader& r) {
  { T::decode(r) } -> std::convertible_to<T>;
};

template <typename T>
  requires std::unsigned_integral<T>
void write(Writer& w, T v) {
  w.uvarint(v);
}

template <typename T>
  requires std::signed_integral<T>
void write(Writer& w, T v) {
  w.svarint(v);
}

inline void write(Writer& w, bool v) { w.boolean(v); }
inline void write(Writer& w, const Bytes& v) { w.bytes(v); }
inline void write(Writer& w, const std::string& v) { w.str(v); }

template <MemberEncodable T>
void write(Writer& w, const T& v) {
  v.encode(w);
}

template <typename T>
void write(Writer& w, const std::vector<T>& v)
  requires(!std::same_as<T, std::uint8_t>)
{
  w.uvarint(v.size());
  for (const T& e : v) write(w, e);
}

template <typename T>
void write(Writer& w, const std::optional<T>& v) {
  w.boolean(v.has_value());
  if (v) write(w, *v);
}

template <typename A, typename B>
void write(Writer& w, const std::pair<A, B>& v) {
  write(w, v.first);
  write(w, v.second);
}

template <typename K, typename V>
void write(Writer& w, const std::map<K, V>& v) {
  w.uvarint(v.size());
  for (const auto& [k, val] : v) {
    write(w, k);
    write(w, val);
  }
}

template <typename T>
struct Decode;  // primary template: specialized below

template <typename T>
  requires std::unsigned_integral<T>
struct Decode<T> {
  static T run(Reader& r) {
    std::uint64_t v = r.uvarint();
    if (v > std::numeric_limits<T>::max())
      throw DecodeError("integer out of range");
    return static_cast<T>(v);
  }
};

template <typename T>
  requires std::signed_integral<T>
struct Decode<T> {
  static T run(Reader& r) {
    std::int64_t v = r.svarint();
    if (v > std::numeric_limits<T>::max() || v < std::numeric_limits<T>::min())
      throw DecodeError("integer out of range");
    return static_cast<T>(v);
  }
};

template <>
struct Decode<bool> {
  static bool run(Reader& r) { return r.boolean(); }
};

template <>
struct Decode<Bytes> {
  static Bytes run(Reader& r) { return r.bytes(); }
};

template <>
struct Decode<std::string> {
  static std::string run(Reader& r) { return r.str(); }
};

template <MemberDecodable T>
struct Decode<T> {
  static T run(Reader& r) { return T::decode(r); }
};

template <typename T>
  requires(!std::same_as<T, std::uint8_t>)
struct Decode<std::vector<T>> {
  static std::vector<T> run(Reader& r) {
    std::uint64_t n = r.uvarint();
    // Guard against absurd sizes from malformed input before allocating.
    if (n > r.remaining()) throw DecodeError("vector length exceeds input");
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(Decode<T>::run(r));
    return out;
  }
};

template <typename T>
struct Decode<std::optional<T>> {
  static std::optional<T> run(Reader& r) {
    if (!r.boolean()) return std::nullopt;
    return Decode<T>::run(r);
  }
};

template <typename A, typename B>
struct Decode<std::pair<A, B>> {
  static std::pair<A, B> run(Reader& r) {
    A a = Decode<A>::run(r);
    B b = Decode<B>::run(r);
    return {std::move(a), std::move(b)};
  }
};

template <typename K, typename V>
struct Decode<std::map<K, V>> {
  static std::map<K, V> run(Reader& r) {
    std::uint64_t n = r.uvarint();
    if (n > r.remaining()) throw DecodeError("map length exceeds input");
    std::map<K, V> out;
    for (std::uint64_t i = 0; i < n; ++i) {
      K k = Decode<K>::run(r);
      V v = Decode<V>::run(r);
      out.emplace(std::move(k), std::move(v));
    }
    return out;
  }
};

template <typename T>
T read(Reader& r) {
  return Decode<T>::run(r);
}

/// Encodes a single value to a fresh buffer.
template <typename T>
Bytes encode(const T& v) {
  Writer w;
  write(w, v);
  return w.take();
}

/// Decodes a single value, requiring the buffer to be fully consumed.
template <typename T>
T decode(ByteSpan data) {
  Reader r(data);
  T v = read<T>(r);
  r.expect_done();
  return v;
}

}  // namespace unidir::serde
