// Byte-buffer utilities used for message payloads, signatures and hashing.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace unidir {

/// The wire representation of every message, attestation and proof in the
/// library. Protocols serialize their structs to Bytes (see serde.h) so that
/// signing and hashing operate on a canonical encoding.
using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Renders bytes as lowercase hex (for logs and test diagnostics).
std::string to_hex(ByteSpan data);

/// Parses lowercase/uppercase hex. Throws std::invalid_argument on bad input.
Bytes from_hex(std::string_view hex);

/// Copies a UTF-8/ASCII string into a byte buffer.
Bytes bytes_of(std::string_view s);

/// Interprets a byte buffer as a string (no validation).
std::string string_of(ByteSpan data);

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteSpan src);

/// Constant-time equality, as used for comparing authenticators. Returns
/// false on length mismatch without early exit on content.
bool constant_time_equal(ByteSpan a, ByteSpan b);

/// FNV-1a 64-bit hash. Non-cryptographic: used for content fingerprints in
/// schedule-trace keys, never for authentication.
std::uint64_t fnv1a64(ByteSpan data);

/// Word-at-a-time 64-bit content fingerprint (FNV-style over 8-byte chunks
/// with an avalanche finish) — ~8x fnv1a64's rate on verification-sized
/// payloads. Non-cryptographic: used for the crypto verify memo, where a
/// collision is tolerated (see KeyRegistry), never for authentication.
std::uint64_t fingerprint64(ByteSpan data);

}  // namespace unidir
