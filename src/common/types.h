// Core type aliases shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace unidir {

/// Identifier of a process in a distributed system. Dense, zero-based.
using ProcessId = std::uint32_t;

/// Virtual time in the discrete-event simulator (abstract "ticks").
using Time = std::uint64_t;

/// Sequence number used by broadcasts, trusted counters and logs.
/// The paper's sequence numbers start at 1; 0 means "none yet".
using SeqNum = std::uint64_t;

/// Round number of a round-based protocol. Rounds start at 1.
using RoundNum = std::uint64_t;

/// View number of a view-based SMR protocol (MinBFT / PBFT).
using ViewNum = std::uint64_t;

/// Multiplexing tag on a network link: lets several protocol components
/// share one process. Channel ids live in the registry in wire/channels.h;
/// the sim layer re-exports this alias for its own interfaces.
using Channel = std::uint32_t;

inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();
inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

}  // namespace unidir
