#include "common/bytes.h"

#include <cstring>
#include <stdexcept>

namespace unidir {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex digit");
}

}  // namespace

std::string to_hex(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0)
    throw std::invalid_argument("from_hex: odd-length input");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) * 16 +
                                            hex_value(hex[i + 1])));
  }
  return out;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string string_of(ByteSpan data) {
  return std::string(data.begin(), data.end());
}

void append(Bytes& dst, ByteSpan src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

std::uint64_t fnv1a64(ByteSpan data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t fingerprint64(ByteSpan data) {
  // Seed with the length so a short input and its zero-padded extension
  // differ even before the avalanche.
  std::uint64_t h =
      0xCBF29CE484222325ULL ^ (data.size() * 0x9E3779B97F4A7C15ULL);
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  for (; n >= 8; n -= 8, p += 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = (h ^ w) * 0x100000001B3ULL;
    // The multiply only carries information upward; fold the high bits back
    // so low-bit slot indices see the whole word.
    h ^= h >> 29;
  }
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < n; ++i) w |= std::uint64_t{p[i]} << (8 * i);
  h = (h ^ w) * 0x100000001B3ULL;
  // splitmix64 finalizer.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

bool constant_time_equal(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  return acc == 0;
}

}  // namespace unidir
