// Per-process observation transcripts.
//
// A process's transcript is the sequence of events it can locally observe:
// the messages it received (sender, channel, payload, in order) and the
// local outputs it produced. Two executions are *indistinguishable* to a
// process iff its transcripts are equal — this is exactly the notion the
// paper's impossibility proofs (Scenarios 1–3, Worlds 1–5) rely on, and the
// simulator records enough to check it mechanically.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/payload.h"
#include "common/types.h"
#include "sim/network.h"

namespace unidir::sim {

struct ObservedEvent {
  enum class Kind : std::uint8_t {
    MessageReceived,  // from, channel, payload
    LocalOutput,      // tag, payload (decisions: deliver/commit/...)
  };

  Kind kind = Kind::MessageReceived;
  ProcessId from = kNoProcess;
  Channel channel = 0;
  std::string tag;
  /// Shares the delivered envelope's buffer — recording an observation
  /// never deep-copies message bytes.
  Payload payload;

  bool operator==(const ObservedEvent&) const = default;

  std::string describe() const;
};

class Transcript {
 public:
  void record_message(ProcessId from, Channel channel, Payload payload);
  void record_output(std::string tag, Payload payload);

  const std::vector<ObservedEvent>& events() const { return events_; }

  /// All LocalOutput events with the given tag.
  std::vector<ObservedEvent> outputs(std::string_view tag) const;

  /// Observable equality (see file comment). Note: virtual *times* are
  /// deliberately excluded — an asynchronous process cannot observe them.
  bool indistinguishable_from(const Transcript& other) const;

  /// Human-readable diff location for test diagnostics: index of the first
  /// differing event, or -1 if indistinguishable.
  std::ptrdiff_t first_divergence(const Transcript& other) const;

 private:
  std::vector<ObservedEvent> events_;
};

}  // namespace unidir::sim
