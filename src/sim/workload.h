// Client-fleet workload generation.
//
// A WorkloadSpec describes a fleet of closed- or open-loop clients in pure
// data: how many clients, how many requests each, how arrivals are spaced,
// and how keys are skewed. `plan()` expands the spec deterministically
// (integer math only, seeded sim::Rng streams) into per-client arrival
// schedules; the SMR harness maps those onto real SmrClient processes.
// Keeping the spec here — below the agreement layer — means the generator
// can be unit-tested and shrunk without pulling in any protocol code.
//
// Closed-loop clients submit everything upfront and let the client's
// outstanding-window throttle them (think YCSB worker threads); open-loop
// clients submit on a Poisson-like schedule regardless of completions
// (think arrival-rate-driven load tests). The distinction is what makes
// throughput curves honest: closed-loop load collapses when latency grows,
// open-loop load does not.
#pragma once

#include <string>
#include <vector>

#include "common/serde.h"
#include "common/types.h"

namespace unidir::sim {

struct WorkloadSpec {
  /// Fleet size; 0 disables the workload entirely (the spec is inert data
  /// and harnesses fall back to their single legacy client).
  std::uint64_t clients = 0;
  std::uint64_t requests_per_client = 0;
  /// false: closed-loop (submit all upfront, `max_outstanding` throttles).
  /// true: open-loop (timed arrivals, independent of completions).
  bool open_loop = false;
  /// Open-loop mean gap between a client's consecutive arrivals, in ticks.
  /// Gaps are geometric (the discrete Poisson-process analogue), capped at
  /// 8x the mean so one unlucky draw cannot stall a schedule.
  Time mean_interarrival = 10;
  /// Closed-loop per-client outstanding window (SmrClient pipeline depth).
  std::uint64_t max_outstanding = 1;
  /// Keys are drawn from [0, key_space).
  std::uint64_t key_space = 16;
  /// Skew: this percent of operations land on the first `hot_keys` keys.
  /// 0 = uniform.
  std::uint64_t hot_key_percent = 0;
  std::uint64_t hot_keys = 1;
  /// Arrival/key randomness stream, independent of the simulator seed.
  std::uint64_t seed = 1;

  bool operator==(const WorkloadSpec&) const = default;

  bool enabled() const { return clients > 0 && requests_per_client > 0; }
  std::uint64_t total_requests() const {
    return enabled() ? clients * requests_per_client : 0;
  }

  /// One planned request: when the client submits it (absolute tick;
  /// always 0 for closed-loop) and which key it touches.
  struct Arrival {
    Time at = 0;
    std::uint64_t key = 0;

    bool operator==(const Arrival&) const = default;
  };
  struct ClientPlan {
    std::vector<Arrival> arrivals;  // in submission order

    bool operator==(const ClientPlan&) const = default;
  };

  /// Expands the spec into per-client schedules. Deterministic: equal specs
  /// yield equal plans. Each client draws from its own substream, so adding
  /// a client never perturbs the others' schedules (shrinker-friendly).
  std::vector<ClientPlan> plan() const;

  std::string describe() const;

  void encode(serde::Writer& w) const;
  static WorkloadSpec decode(serde::Reader& r);
};

}  // namespace unidir::sim
