#include "sim/rng.h"

#include <bit>

namespace unidir::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  UNIDIR_REQUIRE(bound > 0);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `bound` that fits in 64 bits.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % bound;
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  UNIDIR_REQUIRE(lo <= hi);
  if (lo == 0 && hi == ~std::uint64_t{0}) return next();
  return lo + below(hi - lo + 1);
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  UNIDIR_REQUIRE(den > 0 && num <= den);
  return below(den) < num;
}

double Rng::unit() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::split() { return Rng(next()); }

}  // namespace unidir::sim
