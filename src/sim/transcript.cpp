#include "sim/transcript.h"

#include <algorithm>
#include <sstream>

namespace unidir::sim {

std::string ObservedEvent::describe() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::MessageReceived:
      os << "recv(from=" << from << ", ch=" << channel << ", "
         << to_hex(payload).substr(0, 16) << "…)";
      break;
    case Kind::LocalOutput:
      os << "output(" << tag << ", " << to_hex(payload).substr(0, 16) << "…)";
      break;
  }
  return os.str();
}

void Transcript::record_message(ProcessId from, Channel channel,
                                Payload payload) {
  ObservedEvent ev;
  ev.kind = ObservedEvent::Kind::MessageReceived;
  ev.from = from;
  ev.channel = channel;
  ev.payload = std::move(payload);
  events_.push_back(std::move(ev));
}

void Transcript::record_output(std::string tag, Payload payload) {
  ObservedEvent ev;
  ev.kind = ObservedEvent::Kind::LocalOutput;
  ev.tag = std::move(tag);
  ev.payload = std::move(payload);
  events_.push_back(std::move(ev));
}

std::vector<ObservedEvent> Transcript::outputs(std::string_view tag) const {
  std::vector<ObservedEvent> out;
  for (const auto& ev : events_)
    if (ev.kind == ObservedEvent::Kind::LocalOutput && ev.tag == tag)
      out.push_back(ev);
  return out;
}

bool Transcript::indistinguishable_from(const Transcript& other) const {
  return events_ == other.events_;
}

std::ptrdiff_t Transcript::first_divergence(const Transcript& other) const {
  const std::size_t n = std::min(events_.size(), other.events_.size());
  for (std::size_t i = 0; i < n; ++i)
    if (!(events_[i] == other.events_[i]))
      return static_cast<std::ptrdiff_t>(i);
  if (events_.size() != other.events_.size())
    return static_cast<std::ptrdiff_t>(n);
  return -1;
}

}  // namespace unidir::sim
