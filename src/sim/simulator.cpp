#include "sim/simulator.h"

#include <bit>

#include "common/check.h"

namespace unidir::sim {

namespace {

/// (time, seq) lexicographic order.
inline bool earlier(Time at_a, std::uint64_t seq_a, Time at_b,
                    std::uint64_t seq_b) {
  if (at_a != at_b) return at_a < at_b;
  return seq_a < seq_b;
}

}  // namespace

// ---- Ring ------------------------------------------------------------------

void Simulator::Ring::push(Time at, Entry e) {
  if (size_ == 0)
    time_ = at;
  else
    UNIDIR_CHECK_MSG(time_ == at, "ring holds a single virtual time");
  if (size_ == buf_.size()) grow();
  buf_[(head_ + size_) % buf_.size()] = e;
  ++size_;
}

Simulator::Entry Simulator::Ring::pop() {
  Entry e = buf_[head_];
  head_ = (head_ + 1) % buf_.size();
  --size_;
  return e;
}

void Simulator::Ring::grow() {
  const std::size_t cap = buf_.empty() ? 64 : buf_.size() * 2;
  std::vector<Entry> next(cap);
  for (std::size_t i = 0; i < size_; ++i)
    next[i] = buf_[(head_ + i) % buf_.size()];
  buf_ = std::move(next);
  head_ = 0;
}

// ---- slab ------------------------------------------------------------------

std::uint32_t Simulator::acquire_slot(Action fn) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot] = std::move(fn);
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slab_.size());
  slab_.push_back(std::move(fn));
  return slot;
}

// ---- heap ------------------------------------------------------------------

void Simulator::heap_push(Entry e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(heap_[i].at, heap_[i].seq, heap_[parent].at,
                 heap_[parent].seq))
      break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Simulator::Entry Simulator::heap_pop() {
  Entry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t best = i;
    if (l < n && earlier(heap_[l].at, heap_[l].seq, heap_[best].at,
                         heap_[best].seq))
      best = l;
    if (r < n && earlier(heap_[r].at, heap_[r].seq, heap_[best].at,
                         heap_[best].seq))
      best = r;
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

// ---- scheduling ------------------------------------------------------------

void Simulator::note_scheduled() {
  ++stats_.scheduled;
  const std::size_t depth = pending();
  if (depth > stats_.peak_pending) stats_.peak_pending = depth;
}

void Simulator::at(Time t, Action fn) {
  UNIDIR_REQUIRE_MSG(t >= now_, "cannot schedule in the past");
  UNIDIR_REQUIRE(static_cast<bool>(fn));
  const Entry e{t, next_seq_++, acquire_slot(std::move(fn))};
  // t >= now_ was checked above, so the subtraction cannot wrap — no
  // separate overflow guard needed near kTimeMax.
  if (t - now_ < kNumRings) {
    const std::size_t i = t & (kNumRings - 1);
    rings_[i].push(t, e);
    ring_mask_ |= 1u << i;
    ++stats_.ring_fast_path;
  } else {
    heap_push(e);
    ++stats_.heap_events;
  }
  ++live_;
  note_scheduled();
}

void Simulator::after(Time delay, Action fn) {
  UNIDIR_REQUIRE_MSG(delay <= kTimeMax - now_, "time overflow");
  at(now_ + delay, std::move(fn));
}

// ---- execution -------------------------------------------------------------

Time Simulator::min_time() const {
  Time best = kTimeMax;
  bool found = false;
  for (std::uint32_t m = ring_mask_; m != 0; m &= m - 1) {
    const Ring& ring = rings_[static_cast<std::size_t>(std::countr_zero(m))];
    if (!found || ring.time() < best) best = ring.time();
    found = true;
  }
  if (!heap_.empty() && (!found || heap_.front().at < best))
    best = heap_.front().at;
  return best;
}

Simulator::Entry Simulator::pop_min() {
  // Candidates: each non-empty ring's front (minimal seq for that ring's
  // time) and the heap top, compared by (time, seq). The mask keeps the
  // scan proportional to the active rings, not the wheel width.
  int best_ring = -1;
  for (std::uint32_t m = ring_mask_; m != 0; m &= m - 1) {
    const int i = std::countr_zero(m);
    if (best_ring < 0 ||
        earlier(rings_[i].time(), rings_[i].front().seq,
                rings_[best_ring].time(), rings_[best_ring].front().seq))
      best_ring = i;
  }
  if (best_ring >= 0 &&
      (heap_.empty() ||
       earlier(rings_[best_ring].time(), rings_[best_ring].front().seq,
               heap_.front().at, heap_.front().seq))) {
    Entry e = rings_[best_ring].pop();
    if (rings_[best_ring].empty())
      ring_mask_ &= ~(1u << static_cast<unsigned>(best_ring));
    return e;
  }
  return heap_pop();
}

bool Simulator::step() {
  if (idle()) return false;
  const Entry e = pop_min();
  --live_;
  UNIDIR_CHECK(e.at >= now_);
  now_ = e.at;
  ++stats_.executed;
  InlineFn fn = std::move(slab_[e.slot]);
  free_slots_.push_back(e.slot);
  fn();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

bool Simulator::run_until(const std::function<bool()>& pred,
                          std::size_t max_events) {
  if (pred()) return true;
  for (std::size_t n = 0; n < max_events; ++n) {
    if (!step()) return pred();
    if (pred()) return true;
  }
  return false;
}

void Simulator::run_to_time(Time t, std::size_t max_events) {
  UNIDIR_REQUIRE(t >= now_);
  std::size_t n = 0;
  while (!idle() && min_time() <= t && n < max_events) {
    step();
    ++n;
  }
  now_ = t;
}

}  // namespace unidir::sim
