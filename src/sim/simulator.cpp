#include "sim/simulator.h"

#include "common/check.h"

namespace unidir::sim {

void Simulator::at(Time t, Action fn) {
  UNIDIR_REQUIRE_MSG(t >= now_, "cannot schedule in the past");
  UNIDIR_REQUIRE(fn != nullptr);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::after(Time delay, Action fn) {
  UNIDIR_REQUIRE_MSG(delay <= kTimeMax - now_, "time overflow");
  at(now_ + delay, std::move(fn));
}

Simulator::Event Simulator::pop() {
  // priority_queue::top() returns const&; moving the action out requires a
  // const_cast, which is safe because we pop immediately after.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  return ev;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = pop();
  UNIDIR_CHECK(ev.at >= now_);
  now_ = ev.at;
  ++executed_;
  ev.fn();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

bool Simulator::run_until(const std::function<bool()>& pred,
                          std::size_t max_events) {
  if (pred()) return true;
  for (std::size_t n = 0; n < max_events; ++n) {
    if (!step()) return pred();
    if (pred()) return true;
  }
  return false;
}

void Simulator::run_to_time(Time t, std::size_t max_events) {
  UNIDIR_REQUIRE(t >= now_);
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().at <= t && n < max_events) {
    step();
    ++n;
  }
  now_ = t;
}

}  // namespace unidir::sim
