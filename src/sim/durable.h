// Per-process durable storage modelling NVRAM/disk under the crash-recovery
// fault model.
//
// A DurableStore's contents survive World::restart while everything held in
// the Process object itself is presumed lost — recovery code must rebuild
// all volatile state from what it explicitly persisted here (see
// Process::on_recover). Keys are short stable strings ("minbft/state");
// values are serde encodings, so stored state round-trips deterministically
// and the store itself never interprets them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "common/serde.h"

namespace unidir::sim {

class DurableStore {
 public:
  virtual ~DurableStore() = default;

  /// The mutators are virtual so backends (runtime::FileDurableStore) can
  /// write through to stable media at commit granularity; reads always come
  /// from the in-memory image, which a backend rebuilds at construction.
  virtual void put(std::string key, Bytes value) {
    data_[std::move(key)] = std::move(value);
  }
  /// nullptr when absent; the pointer is invalidated by the next put/erase.
  const Bytes* get(const std::string& key) const {
    auto it = data_.find(key);
    return it == data_.end() ? nullptr : &it->second;
  }
  bool contains(const std::string& key) const {
    return data_.find(key) != data_.end();
  }
  virtual void erase(const std::string& key) { data_.erase(key); }
  virtual void clear() { data_.clear(); }
  std::size_t size() const { return data_.size(); }
  /// The full in-memory image, for backends that serialize it wholesale.
  const std::map<std::string, Bytes>& entries() const { return data_; }

  /// Typed wrappers over the serde codec. get_value throws DecodeError on a
  /// corrupt record — durable storage is written only by the process itself,
  /// so a decode failure is a bug, not an adversary.
  template <typename T>
  void put_value(std::string key, const T& value) {
    put(std::move(key), serde::encode(value));
  }
  template <typename T>
  std::optional<T> get_value(const std::string& key) const {
    const Bytes* raw = get(key);
    if (!raw) return std::nullopt;
    return serde::decode<T>(*raw);
  }

 protected:
  std::map<std::string, Bytes> data_;
};

}  // namespace unidir::sim
