// Deterministic pseudo-random number generator for the simulator.
//
// xoshiro256** seeded via SplitMix64. Every source of nondeterminism in an
// execution (adversary delays, random linearization orders, workload
// generation) draws from an Rng derived from the world seed, so executions
// replay bit-identically from a single 64-bit seed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace unidir::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over the full 64-bit range.
  std::uint64_t next();

  /// Uniform in [0, bound). Requires bound > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// True with probability num/den. Requires den > 0 and num <= den.
  bool chance(std::uint64_t num, std::uint64_t den);

  /// Uniform double in [0, 1).
  double unit();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks one element uniformly. Requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    UNIDIR_REQUIRE(!v.empty());
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Derives an independent child generator (for splitting streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace unidir::sim
