// Standard adversaries: the scheduling behaviours the paper's proofs and
// experiments quantify over.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "sim/network.h"

namespace unidir::sim {

/// Delivers every message after exactly `delay` ticks (default 1).
/// The friendliest schedule; useful as a protocol smoke test and a
/// throughput best case.
class ImmediateAdversary final : public Adversary {
 public:
  explicit ImmediateAdversary(Time delay = 1) : delay_(delay) {}
  std::optional<Time> on_send(const Envelope&, Rng&) override {
    return delay_;
  }

 private:
  Time delay_;
};

/// Delivers every message after a uniformly random delay in [min, max].
/// Models benign asynchrony; randomizing over seeds explores many
/// interleavings.
class RandomDelayAdversary final : public Adversary {
 public:
  RandomDelayAdversary(Time min_delay, Time max_delay)
      : min_(min_delay), max_(max_delay) {
    UNIDIR_REQUIRE(min_ <= max_ && min_ >= 1);
  }
  std::optional<Time> on_send(const Envelope&, Rng& rng) override {
    return rng.range(min_, max_);
  }
  std::optional<Time> on_release(const Envelope&, Rng& rng) override {
    return rng.range(min_, max_);
  }

 private:
  Time min_;
  Time max_;
};

/// Holds messages that cross a configurable partition; delivers everything
/// else after a random delay in [1, intra_max]. This is the adversary used
/// to *construct* the executions in the paper's impossibility proofs
/// ("messages from X to Y are arbitrarily delayed").
class PartitionAdversary final : public Adversary {
 public:
  explicit PartitionAdversary(Time intra_max = 3) : intra_max_(intra_max) {}

  /// Blocks all messages from any process in `from` to any in `to`
  /// (directional). Call multiple times to block several flows.
  void block(const std::set<ProcessId>& from, const std::set<ProcessId>& to);

  /// Blocks both directions between the two groups.
  void block_bidirectional(const std::set<ProcessId>& a,
                           const std::set<ProcessId>& b);

  /// Removes all blocks. Pair with Network::flush_held() to heal.
  void clear();

  bool blocked(ProcessId from, ProcessId to) const;

  std::optional<Time> on_send(const Envelope& env, Rng& rng) override;
  std::optional<Time> on_release(const Envelope& env, Rng& rng) override;

 private:
  std::set<std::pair<ProcessId, ProcessId>> blocked_;
  Time intra_max_;
};

/// Partial synchrony: before GST, each message is delayed by a random
/// amount that may push it past GST; at/after GST every message (including
/// ones sent earlier) is delivered within `delta` of max(sent, GST).
/// Never holds, so liveness after GST needs no manual flushing.
class GstAdversary final : public Adversary {
 public:
  GstAdversary(Time gst, Time delta, Time pre_gst_max_extra)
      : gst_(gst), delta_(delta), pre_extra_(pre_gst_max_extra) {
    UNIDIR_REQUIRE(delta_ >= 1);
  }

  std::optional<Time> on_send(const Envelope& env, Rng& rng) override;

  Time gst() const { return gst_; }
  Time delta() const { return delta_; }

 private:
  Time gst_;
  Time delta_;
  Time pre_extra_;
};

/// At-least-once delivery: every message is delivered 1..max_copies times
/// (uniformly chosen), each copy independently delayed in [1, max_delay].
/// Protocols built for asynchronous networks must be idempotent against
/// this — the duplication fault-injection tests run under it.
class DuplicatingAdversary final : public Adversary {
 public:
  DuplicatingAdversary(unsigned max_copies, Time max_delay)
      : max_copies_(max_copies), max_delay_(max_delay) {
    UNIDIR_REQUIRE(max_copies >= 1 && max_delay >= 1);
  }

  std::optional<Time> on_send(const Envelope&, Rng& rng) override {
    return rng.range(1, max_delay_);
  }
  unsigned copies(const Envelope&, Rng& rng) override {
    return static_cast<unsigned>(rng.range(1, max_copies_));
  }

 private:
  unsigned max_copies_;
  Time max_delay_;
};

/// Byzantine network: deterministically rewrites payload bytes in flight on
/// chosen links, delegating all *scheduling* to an inner adversary. Three
/// mutation kinds — truncate (drop a suffix), flip (xor one bit), splice
/// (insert random bytes) — exercise the typed wire layer's decode boundary
/// uniformly across protocols: truncation trips `truncated input`, flips
/// corrupt tags/fields/signatures, splices trip exact-consume. Mutated
/// copies detach from the COW payload buffer, so duplicates of one send can
/// diverge byte-wise.
class MutatingAdversary final : public Adversary {
 public:
  struct Options {
    /// Per-copy mutation probability, in percent (0..100).
    std::uint32_t rate_percent = 25;
    bool truncate = true;
    bool flip = true;
    bool splice = true;
    /// Restrict mutation to messages from this sender (targeted tests).
    std::optional<ProcessId> only_from;
    /// Restrict mutation to these channels; empty = every channel.
    std::set<Channel> only_channels;
  };

  explicit MutatingAdversary(std::unique_ptr<Adversary> inner);
  MutatingAdversary(std::unique_ptr<Adversary> inner, Options options);

  std::optional<Time> on_send(const Envelope& env, Rng& rng) override {
    return inner_->on_send(env, rng);
  }
  unsigned copies(const Envelope& env, Rng& rng) override {
    return inner_->copies(env, rng);
  }
  std::optional<Time> on_release(const Envelope& env, Rng& rng) override {
    return inner_->on_release(env, rng);
  }
  bool mutate(Envelope& env, Rng& rng) override;

 private:
  std::unique_ptr<Adversary> inner_;
  Options options_;
};

/// Fully scripted: delegates to a user function. Used by targeted tests to
/// build exact executions.
class ScriptedAdversary final : public Adversary {
 public:
  using Script = std::function<std::optional<Time>(const Envelope&, Rng&)>;
  explicit ScriptedAdversary(Script script) : script_(std::move(script)) {
    UNIDIR_REQUIRE(script_ != nullptr);
  }
  std::optional<Time> on_send(const Envelope& env, Rng& rng) override {
    return script_(env, rng);
  }

 private:
  Script script_;
};

}  // namespace unidir::sim
