#include "sim/network.h"

#include <utility>

#include "common/check.h"

namespace unidir::sim {

Network::Network(Simulator& simulator, Rng rng,
                 std::unique_ptr<Adversary> adversary)
    : simulator_(simulator),
      rng_(rng),
      adversary_(std::move(adversary)) {
  UNIDIR_REQUIRE(adversary_ != nullptr);
}

void Network::send(ProcessId from, ProcessId to, Channel channel,
                   Payload payload) {
  UNIDIR_CHECK_MSG(deliver_ != nullptr, "network not wired to a world");
  Envelope env;
  env.id = next_id_++;
  env.from = from;
  env.to = to;
  env.channel = channel;
  env.payload = std::move(payload);
  env.sent_at = simulator_.now();

  ++stats_.messages_sent;
  stats_.bytes_sent += env.payload.size();

  if (crashed_ && (crashed_(from) || crashed_(to))) {
    ++stats_.messages_dropped;
    return;
  }

  const unsigned copies = std::max(1u, adversary_->copies(env, rng_));
  for (unsigned i = 0; i + 1 < copies; ++i) {
    Envelope dup = env;  // shares the payload buffer (COW)
    // Mutation before on_send: the scheduling decision, the observer tap
    // and any trace key all see the bytes that will be delivered. Payload
    // is COW, so mutating the duplicate detaches it from the original.
    if (adversary_->mutate(dup, rng_)) ++stats_.messages_mutated;
    const std::optional<Time> delay = adversary_->on_send(dup, rng_);
    if (observer_) observer_(dup, DecisionPoint::Duplicate, delay);
    ++stats_.messages_duplicated;
    if (!delay) {
      held_.push_back(std::move(dup));
      ++stats_.messages_held;
      continue;
    }
    schedule_delivery(std::move(dup), *delay);
  }

  if (adversary_->mutate(env, rng_)) ++stats_.messages_mutated;
  const std::optional<Time> delay = adversary_->on_send(env, rng_);
  if (observer_) observer_(env, DecisionPoint::Send, delay);
  if (!delay) {
    held_.push_back(std::move(env));
    ++stats_.messages_held;
    return;
  }
  schedule_delivery(std::move(env), *delay);
}

void Network::schedule_delivery(Envelope env, Time delay) {
  simulator_.after(delay, [this, env = std::move(env)]() {
    if (crashed_ && (crashed_(env.from) || crashed_(env.to))) {
      // The endpoint was up at send time but down by delivery time: the
      // message was lost in flight. Counted separately so crash-recovery
      // experiments can see exactly what a restarting replica missed.
      ++stats_.messages_dropped;
      ++stats_.dropped_crashed;
      return;
    }
    ++stats_.messages_delivered;
    deliver_(env);
  });
}

void Network::flush_held() {
  flush_held_if([](const Envelope&) { return true; });
}

void Network::flush_held_if(const std::function<bool(const Envelope&)>& pred) {
  std::vector<Envelope> keep;
  keep.reserve(held_.size());
  for (Envelope& env : held_) {
    if (!pred(env)) {
      keep.push_back(std::move(env));
      continue;
    }
    const std::optional<Time> delay = adversary_->on_release(env, rng_);
    if (observer_) observer_(env, DecisionPoint::Release, delay);
    if (!delay) {
      keep.push_back(std::move(env));
      continue;
    }
    --stats_.messages_held;
    schedule_delivery(std::move(env), *delay);
  }
  held_ = std::move(keep);
}

void Network::drop_held() {
  stats_.messages_dropped += held_.size();
  stats_.messages_held = 0;
  held_.clear();
}

}  // namespace unidir::sim
