#include "sim/network.h"

#include <utility>

#include "common/check.h"

namespace unidir::sim {

Network::Network(Simulator& simulator, Rng rng,
                 std::unique_ptr<Adversary> adversary)
    : simulator_(simulator),
      rng_(rng),
      adversary_(std::move(adversary)) {
  UNIDIR_REQUIRE(adversary_ != nullptr);
}

void Network::send(ProcessId from, ProcessId to, Channel channel,
                   Payload payload) {
  UNIDIR_CHECK_MSG(deliver_ != nullptr, "network not wired to a world");
  Envelope env;
  env.id = next_id_++;
  env.from = from;
  env.to = to;
  env.channel = channel;
  env.payload = std::move(payload);
  env.sent_at = simulator_.now();

  ++stats_.messages_sent;
  stats_.bytes_sent += env.payload.size();

  if (crashed_ && (crashed_(from) || crashed_(to))) {
    ++stats_.messages_dropped;
    stats_.bytes_dropped += env.payload.size();
    if (tracer_) {
      tracer_->instant("drop-crashed", "net", env.to, env.sent_at, "from",
                       env.from, "ch", env.channel);
    }
    return;
  }

  // Mutation may resize the payload after bytes_sent was counted; tracking
  // the deltas keeps the byte ledger exact (see network_byte_conservation
  // in src/explore/invariants.cpp).
  auto mutate_copy = [this](Envelope& copy) {
    const std::size_t before = copy.payload.size();
    if (!adversary_->mutate(copy, rng_)) return;
    ++stats_.messages_mutated;
    const std::size_t after = copy.payload.size();
    if (after > before) {
      stats_.bytes_mutation_added += after - before;
    } else {
      stats_.bytes_mutation_removed += before - after;
    }
  };

  const unsigned copies = std::max(1u, adversary_->copies(env, rng_));
  for (unsigned i = 0; i + 1 < copies; ++i) {
    Envelope dup = env;  // shares the payload buffer (COW)
    stats_.bytes_duplicated += dup.payload.size();
    // Mutation before on_send: the scheduling decision, the observer tap
    // and any trace key all see the bytes that will be delivered. Payload
    // is COW, so mutating the duplicate detaches it from the original.
    mutate_copy(dup);
    const std::optional<Time> delay = adversary_->on_send(dup, rng_);
    if (observer_) observer_(dup, DecisionPoint::Duplicate, delay);
    ++stats_.messages_duplicated;
    if (!delay) {
      ++stats_.messages_held;
      stats_.bytes_held += dup.payload.size();
      held_.push_back(std::move(dup));
      continue;
    }
    schedule_delivery(std::move(dup), *delay);
  }

  mutate_copy(env);
  const std::optional<Time> delay = adversary_->on_send(env, rng_);
  if (observer_) observer_(env, DecisionPoint::Send, delay);
  if (!delay) {
    ++stats_.messages_held;
    stats_.bytes_held += env.payload.size();
    held_.push_back(std::move(env));
    return;
  }
  schedule_delivery(std::move(env), *delay);
}

void Network::schedule_delivery(Envelope env, Time delay) {
  simulator_.after(delay, [this, env = std::move(env)]() {
    if (crashed_ && (crashed_(env.from) || crashed_(env.to))) {
      // The endpoint was up at send time but down by delivery time: the
      // message was lost in flight. Counted separately so crash-recovery
      // experiments can see exactly what a restarting replica missed.
      ++stats_.messages_dropped;
      ++stats_.dropped_crashed;
      stats_.bytes_dropped += env.payload.size();
      if (tracer_) {
        tracer_->instant("drop-crashed", "net", env.to, simulator_.now(),
                         "from", env.from, "ch", env.channel);
      }
      return;
    }
    ++stats_.messages_delivered;
    stats_.bytes_delivered += env.payload.size();
    if (tracer_) {
      tracer_->complete("msg", "net", env.to, env.sent_at,
                        simulator_.now() - env.sent_at, "from", env.from,
                        "ch", env.channel);
    }
    deliver_(env);
  });
}

void Network::flush_held() {
  flush_held_if([](const Envelope&) { return true; });
}

void Network::flush_held_if(const std::function<bool(const Envelope&)>& pred) {
  std::vector<Envelope> keep;
  keep.reserve(held_.size());
  for (Envelope& env : held_) {
    if (!pred(env)) {
      keep.push_back(std::move(env));
      continue;
    }
    const std::optional<Time> delay = adversary_->on_release(env, rng_);
    if (observer_) observer_(env, DecisionPoint::Release, delay);
    if (!delay) {
      keep.push_back(std::move(env));
      continue;
    }
    --stats_.messages_held;
    stats_.bytes_held -= env.payload.size();
    schedule_delivery(std::move(env), *delay);
  }
  held_ = std::move(keep);
}

void Network::drop_held() {
  // Held-then-abandoned is a deliberate adversary choice, not a crash;
  // counting it separately (dropped_held vs dropped_crashed) keeps drop
  // attribution exhaustive. messages_dropped stays the all-causes total.
  stats_.dropped_held += held_.size();
  stats_.messages_dropped += held_.size();
  for (const Envelope& env : held_) {
    stats_.bytes_dropped += env.payload.size();
    if (tracer_) {
      tracer_->instant("drop-held", "net", env.to, simulator_.now(), "from",
                       env.from, "ch", env.channel);
    }
  }
  stats_.messages_held = 0;
  stats_.bytes_held = 0;
  held_.clear();
}

}  // namespace unidir::sim
