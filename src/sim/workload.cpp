#include "sim/workload.h"

#include <sstream>

#include "sim/rng.h"

namespace unidir::sim {

namespace {

/// Geometric gap with mean ~`mean` ticks, via Bernoulli trials with
/// p = 1/mean, capped at 8x the mean. mean <= 1 degenerates to 1.
Time draw_gap(Rng& rng, Time mean) {
  if (mean <= 1) return 1;
  const Time cap = 8 * mean;
  Time gap = 1;
  while (gap < cap && !rng.chance(1, mean)) ++gap;
  return gap;
}

}  // namespace

std::vector<WorkloadSpec::ClientPlan> WorkloadSpec::plan() const {
  std::vector<ClientPlan> plans;
  if (!enabled()) return plans;
  plans.reserve(static_cast<std::size_t>(clients));
  const std::uint64_t space = key_space == 0 ? 1 : key_space;
  const std::uint64_t hot = hot_keys == 0 ? 1 : std::min(hot_keys, space);
  for (std::uint64_t c = 0; c < clients; ++c) {
    // Per-client substream: client c's schedule is a function of
    // (seed, c) alone, so dropping other clients (the shrinker does)
    // leaves it untouched.
    Rng rng(seed * 0xBF58476D1CE4E5B9ULL + c + 1);
    ClientPlan p;
    p.arrivals.reserve(static_cast<std::size_t>(requests_per_client));
    Time at = 0;
    for (std::uint64_t k = 0; k < requests_per_client; ++k) {
      Arrival a;
      if (open_loop) {
        at += draw_gap(rng, mean_interarrival);
        a.at = at;
      }
      const bool go_hot =
          hot_key_percent > 0 && rng.chance(std::min<std::uint64_t>(
                                                hot_key_percent, 100),
                                            100);
      a.key = go_hot ? rng.below(hot) : rng.below(space);
      p.arrivals.push_back(a);
    }
    plans.push_back(std::move(p));
  }
  return plans;
}

std::string WorkloadSpec::describe() const {
  if (!enabled()) return "workload=off";
  std::ostringstream os;
  os << "workload=" << clients << "x" << requests_per_client
     << (open_loop ? " open(mean=" + std::to_string(mean_interarrival) + ")"
                   : " closed(window=" + std::to_string(max_outstanding) +
                         ")")
     << " keys=" << key_space;
  if (hot_key_percent > 0)
    os << " hot=" << hot_key_percent << "%/" << hot_keys;
  os << " wseed=" << seed;
  return os.str();
}

void WorkloadSpec::encode(serde::Writer& w) const {
  w.uvarint(clients);
  w.uvarint(requests_per_client);
  w.u8(open_loop ? 1 : 0);
  w.uvarint(mean_interarrival);
  w.uvarint(max_outstanding);
  w.uvarint(key_space);
  w.uvarint(hot_key_percent);
  w.uvarint(hot_keys);
  w.uvarint(seed);
}

WorkloadSpec WorkloadSpec::decode(serde::Reader& r) {
  WorkloadSpec s;
  s.clients = r.uvarint();
  s.requests_per_client = r.uvarint();
  s.open_loop = r.u8() != 0;
  s.mean_interarrival = r.uvarint();
  s.max_outstanding = r.uvarint();
  s.key_space = r.uvarint();
  s.hot_key_percent = r.uvarint();
  s.hot_keys = r.uvarint();
  s.seed = r.uvarint();
  return s;
}

}  // namespace unidir::sim
