// Deterministic discrete-event simulator.
//
// A single virtual clock and an event queue ordered by (time, insertion
// sequence). All protocol executions in this library are driven by one
// Simulator instance; determinism follows from the total event order plus
// the seeded Rng.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace unidir::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= now).
  void at(Time t, Action fn);

  /// Schedules `fn` `delay` ticks from now.
  void after(Time delay, Action fn);

  /// Runs one event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or `max_events` have run.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = kDefaultEventCap);

  /// Runs until `pred()` is true (checked after each event), the queue
  /// drains, or the cap is hit. Returns true iff the predicate held.
  bool run_until(const std::function<bool()>& pred,
                 std::size_t max_events = kDefaultEventCap);

  /// Runs events whose time is <= `t`, then advances the clock to `t`.
  void run_to_time(Time t, std::size_t max_events = kDefaultEventCap);

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

  static constexpr std::size_t kDefaultEventCap = 50'000'000;

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Event pop();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace unidir::sim
