// Deterministic discrete-event simulator.
//
// A single virtual clock and an event queue ordered by (time, insertion
// sequence). All protocol executions in this library are driven by one
// Simulator instance; determinism follows from the total event order plus
// the seeded Rng.
//
// The queue is engineered for the message-delivery hot path:
//
//  * Callables are stored in an InlineFn — a move-only wrapper with 64
//    bytes of inline storage — so scheduling a delivery lambda (Envelope
//    capture included) performs no heap allocation, unlike std::function.
//  * Callables live in a slab (recycled slots); the binary heap orders
//    lightweight {time, seq, slot} entries, so sift operations move 24-byte
//    PODs instead of whole closures.
//  * Events scheduled within the next few ticks — the vast majority, since
//    protocol messages are delivered with small delays and timers fire
//    "next tick" — bypass the heap entirely through a wheel of FIFO rings
//    (one per time residue mod kNumRings, covering [now, now+kNumRings)).
//    Ring order IS (time, seq) order because a ring holds a single virtual
//    time at any moment: within the wheel's window, each residue class
//    names exactly one time.
//
// Scheduling semantics are unchanged: events run in strictly increasing
// (time, seq) order regardless of which structure holds them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace unidir::sim {

/// Move-only callable with small-buffer-optimized storage. Callables whose
/// size fits kInlineSize are stored inline; larger ones fall back to the
/// heap. Invoking an empty InlineFn is undefined (checked in debug).
class InlineFn {
 public:
  static constexpr std::size_t kInlineSize = 64;

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT: mirrors std::function

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_) ops_->relocate(storage_, other.storage_);
    other.ops_ = nullptr;
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    UNIDIR_CHECK_MSG(ops_ != nullptr, "invoking empty InlineFn");
    ops_->call(storage_);
  }

  void reset() {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*call)(void* self);
    /// Move-constructs into dst from src, then destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* self) { (*static_cast<Fn*>(self))(); },
      [](void* dst, void* src) {
        Fn* s = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* self) { static_cast<Fn*>(self)->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* self) { (**static_cast<Fn**>(self))(); },
      [](void* dst, void* src) {
        std::memcpy(dst, src, sizeof(Fn*));  // steal the pointer
      },
      [](void* self) { delete *static_cast<Fn**>(self); }};

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

/// Counters exposed by the simulator for benchmarks and capacity planning.
/// Everything here is a function of the event sequence alone — deliberately
/// no wall-clock fields, so snapshots of these counters are deterministic.
/// Wall-time accounting (run_wall_ns, events/sec) lives one layer up, in
/// runtime::RuntimeStats, where both backends report it honestly.
struct SimulatorStats {
  std::uint64_t scheduled = 0;       // total events ever enqueued
  std::uint64_t executed = 0;        // total events run
  std::size_t peak_pending = 0;      // high-water mark of the queue depth
  std::uint64_t ring_fast_path = 0;  // events routed through the FIFO rings
  std::uint64_t heap_events = 0;     // events that took the binary heap
};

class Simulator {
 public:
  using Action = InlineFn;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= now).
  void at(Time t, Action fn);

  /// Schedules `fn` `delay` ticks from now.
  void after(Time delay, Action fn);

  /// Runs one event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or `max_events` have run.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = kDefaultEventCap);

  /// Runs until `pred()` is true (checked after each event), the queue
  /// drains, or the cap is hit. Returns true iff the predicate held.
  bool run_until(const std::function<bool()>& pred,
                 std::size_t max_events = kDefaultEventCap);

  /// Runs events whose time is <= `t`, then advances the clock to `t`.
  void run_to_time(Time t, std::size_t max_events = kDefaultEventCap);

  bool idle() const { return pending() == 0; }
  std::size_t pending() const { return live_; }
  std::uint64_t executed() const { return stats_.executed; }

  const SimulatorStats& stats() const { return stats_; }

  static constexpr std::size_t kDefaultEventCap = 50'000'000;

 private:
  /// Heap/ring entries reference closures by slab slot; sifting and ring
  /// rotation never touch the closures themselves.
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// Growable circular FIFO of entries, all sharing one virtual time.
  class Ring {
   public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    Time time() const { return time_; }

    void push(Time at, Entry e);
    Entry pop();
    const Entry& front() const { return buf_[head_]; }

   private:
    void grow();

    std::vector<Entry> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    Time time_ = 0;
  };

  std::uint32_t acquire_slot(Action fn);
  void heap_push(Entry e);
  Entry heap_pop();
  /// Picks the globally minimal (time, seq) pending entry; queue non-empty.
  Entry pop_min();
  /// Smallest pending virtual time (queue must be non-empty).
  Time min_time() const;
  void note_scheduled();

  /// Wheel width: events at [now, now + kNumRings) take a ring, the rest
  /// the heap. Power of two so the residue is a mask. 8 covers the typical
  /// adversarial delivery delays (1–7 ticks), not just next-tick timers.
  static constexpr std::size_t kNumRings = 8;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;  // heap_.size() + sum of ring sizes, kept O(1)
  std::vector<Entry> heap_;
  Ring rings_[kNumRings];       // indexed by time mod kNumRings
  std::uint32_t ring_mask_ = 0;  // bit i set iff rings_[i] is non-empty
  std::vector<InlineFn> slab_;
  std::vector<std::uint32_t> free_slots_;
  SimulatorStats stats_;
};

}  // namespace unidir::sim
