// Asynchronous message-passing network with an adversary-controlled
// scheduler.
//
// Links are reliable but arbitrarily delayed: the adversary chooses, per
// message, either a finite delivery delay or to *hold* the message
// indefinitely (modelling "arbitrarily delayed" in the paper's proofs; held
// messages can later be released, or never — an infinite execution suffix
// is represented by running the world to quiescence with the hold in
// place). Messages between a crashed endpoint and anyone are dropped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/payload.h"
#include "common/types.h"
#include "obs/tracer.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace unidir::sim {

/// Multiplexing tag: lets several protocol components share one process.
/// The canonical alias lives in common/types.h; sim re-exports it so
/// existing `sim::Channel` spellings keep working.
using Channel = unidir::Channel;

/// The unit the network schedules. Copying an Envelope (duplication, held-
/// message storage, delivery closures) shares the payload buffer.
struct Envelope {
  std::uint64_t id = 0;
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Channel channel = 0;
  Payload payload;
  Time sent_at = 0;
};

/// Decides message scheduling. Implementations live in adversaries.h.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Returns the delivery delay for this message, or nullopt to hold it.
  virtual std::optional<Time> on_send(const Envelope& env, Rng& rng) = 0;

  /// How many copies of this message to deliver (an at-least-once
  /// network). Each extra copy gets its own on_send decision. Default 1;
  /// 0 is treated as 1 — links here are reliable-but-duplicating, message
  /// LOSS is modelled by holding instead (see file comment on network.h).
  virtual unsigned copies(const Envelope& env, Rng& rng) {
    (void)env;
    (void)rng;
    return 1;
  }

  /// Re-offered a previously held message (e.g. after a partition heals).
  /// Default: deliver immediately.
  virtual std::optional<Time> on_release(const Envelope& env, Rng& rng) {
    (void)env;
    (void)rng;
    return Time{1};
  }

  /// Offered each copy of a message (duplicates included) before its
  /// scheduling decision; a Byzantine-network adversary may rewrite
  /// `env.payload` in place (see MutatingAdversary). Returns true iff the
  /// payload was changed. Runs before on_send so trace keys and observers
  /// see the bytes that will actually be delivered. Default: no mutation.
  virtual bool mutate(Envelope& env, Rng& rng) {
    (void)env;
    (void)rng;
    return false;
  }
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;     // total, every cause
  std::uint64_t dropped_crashed = 0;      // of those: in flight when the
                                          // destination (or source) crashed
  std::uint64_t dropped_held = 0;         // of those: held by the adversary,
                                          // then abandoned via drop_held()
  std::uint64_t messages_held = 0;        // currently held by the adversary
  std::uint64_t messages_duplicated = 0;  // extra copies injected
  std::uint64_t messages_mutated = 0;     // payloads rewritten in flight
  std::uint64_t bytes_sent = 0;           // original sends, pre-mutation
  std::uint64_t bytes_delivered = 0;      // as handed to the destination
  std::uint64_t bytes_dropped = 0;        // attributed at each drop site
  std::uint64_t bytes_held = 0;           // currently sitting in held_
  std::uint64_t bytes_duplicated = 0;     // extra copies, pre-mutation
  std::uint64_t bytes_mutation_added = 0;    // payload growth from mutate()
  std::uint64_t bytes_mutation_removed = 0;  // payload shrink from mutate()
};

/// Where in the send path a scheduling decision was made: the original
/// copy of a message, an extra duplicate copy, or the re-offer of a held
/// message.
enum class DecisionPoint : std::uint8_t { Send, Duplicate, Release };

class Network {
 public:
  /// `deliver` is invoked (as a simulator event) for each delivered message.
  using DeliverFn = std::function<void(const Envelope&)>;
  /// Queried at send and delivery time; crashed endpoints drop messages.
  using CrashedFn = std::function<bool(ProcessId)>;
  /// Passive tap fired after the adversary rules on a message (nullopt
  /// delay = held). Used by tracing/diagnostic tooling (see src/explore/);
  /// must not send or mutate the network from inside the callback.
  using ObserverFn = std::function<void(const Envelope&, DecisionPoint,
                                        const std::optional<Time>& delay)>;

  Network(Simulator& simulator, Rng rng, std::unique_ptr<Adversary> adversary);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_crashed(CrashedFn fn) { crashed_ = std::move(fn); }
  void set_observer(ObserverFn fn) { observer_ = std::move(fn); }
  /// Optional virtual-time tracer; the network records a span per delivered
  /// message (send→deliver) and instants for drops. May be null.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Sends a message; the adversary picks its fate. The Payload overload is
  /// the core path — broadcasts wrap their bytes once and every per-link
  /// send shares the same buffer.
  void send(ProcessId from, ProcessId to, Channel channel, Payload payload);
  void send(ProcessId from, ProcessId to, Channel channel, Bytes payload) {
    send(from, to, channel, Payload(std::move(payload)));
  }

  /// Re-offers all held messages to the adversary (via on_release). Call
  /// after reconfiguring a partition adversary.
  void flush_held();

  /// Re-offers held messages matching `pred`.
  void flush_held_if(const std::function<bool(const Envelope&)>& pred);

  /// Drops all held messages (e.g. the suffix of an execution we abandon).
  void drop_held();

  const NetworkStats& stats() const { return stats_; }
  Adversary& adversary() { return *adversary_; }

 private:
  void schedule_delivery(Envelope env, Time delay);

  Simulator& simulator_;
  Rng rng_;
  std::unique_ptr<Adversary> adversary_;
  DeliverFn deliver_;
  CrashedFn crashed_;
  ObserverFn observer_;
  obs::Tracer* tracer_ = nullptr;
  std::vector<Envelope> held_;
  std::uint64_t next_id_ = 1;
  NetworkStats stats_;
};

}  // namespace unidir::sim
