#include "sim/adversaries.h"

namespace unidir::sim {

void PartitionAdversary::block(const std::set<ProcessId>& from,
                               const std::set<ProcessId>& to) {
  for (ProcessId f : from)
    for (ProcessId t : to)
      if (f != t) blocked_.insert({f, t});
}

void PartitionAdversary::block_bidirectional(const std::set<ProcessId>& a,
                                             const std::set<ProcessId>& b) {
  block(a, b);
  block(b, a);
}

void PartitionAdversary::clear() { blocked_.clear(); }

bool PartitionAdversary::blocked(ProcessId from, ProcessId to) const {
  return blocked_.contains({from, to});
}

std::optional<Time> PartitionAdversary::on_send(const Envelope& env,
                                                Rng& rng) {
  if (blocked(env.from, env.to)) return std::nullopt;
  return rng.range(1, intra_max_);
}

std::optional<Time> PartitionAdversary::on_release(const Envelope& env,
                                                   Rng& rng) {
  if (blocked(env.from, env.to)) return std::nullopt;
  return rng.range(1, intra_max_);
}

MutatingAdversary::MutatingAdversary(std::unique_ptr<Adversary> inner)
    : MutatingAdversary(std::move(inner), Options()) {}

MutatingAdversary::MutatingAdversary(std::unique_ptr<Adversary> inner,
                                     Options options)
    : inner_(std::move(inner)), options_(options) {
  UNIDIR_REQUIRE(inner_ != nullptr);
  UNIDIR_REQUIRE(options_.rate_percent <= 100);
}

bool MutatingAdversary::mutate(Envelope& env, Rng& rng) {
  if (options_.only_from && env.from != *options_.only_from) return false;
  if (!options_.only_channels.empty() &&
      !options_.only_channels.contains(env.channel))
    return false;
  if (!rng.chance(options_.rate_percent, 100)) return false;

  enum Kind : std::uint64_t { kTruncate, kFlip, kSplice };
  std::vector<std::uint64_t> kinds;
  if (options_.truncate) kinds.push_back(kTruncate);
  if (options_.flip) kinds.push_back(kFlip);
  if (options_.splice) kinds.push_back(kSplice);
  if (kinds.empty()) return false;

  // Detaches from any Payload sharing this buffer, so the original copy of
  // a duplicated message is untouched.
  Bytes& b = env.payload.mutate();
  switch (rng.pick(kinds)) {
    case kTruncate:
      if (b.empty()) return false;
      b.resize(static_cast<std::size_t>(rng.below(b.size())));
      return true;
    case kFlip:
      if (b.empty()) return false;
      b[static_cast<std::size_t>(rng.below(b.size()))] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
      return true;
    case kSplice: {
      const std::size_t count = static_cast<std::size_t>(rng.range(1, 4));
      const std::size_t at = static_cast<std::size_t>(rng.below(b.size() + 1));
      Bytes junk;
      for (std::size_t i = 0; i < count; ++i)
        junk.push_back(static_cast<std::uint8_t>(rng.below(256)));
      b.insert(b.begin() + static_cast<std::ptrdiff_t>(at), junk.begin(),
               junk.end());
      return true;
    }
  }
  return false;
}

std::optional<Time> GstAdversary::on_send(const Envelope& env, Rng& rng) {
  const Time sent = env.sent_at;
  if (sent >= gst_) return rng.range(1, delta_);
  // Pre-GST: random delay that may or may not cross GST, but the message is
  // always delivered by max(sent, GST) + delta.
  const Time latest_abs = gst_ + delta_;
  const Time max_delay = latest_abs - sent;
  const Time cap = std::min<Time>(max_delay, delta_ + pre_extra_);
  return rng.range(1, std::max<Time>(cap, 1));
}

}  // namespace unidir::sim
