#include "sim/adversaries.h"

namespace unidir::sim {

void PartitionAdversary::block(const std::set<ProcessId>& from,
                               const std::set<ProcessId>& to) {
  for (ProcessId f : from)
    for (ProcessId t : to)
      if (f != t) blocked_.insert({f, t});
}

void PartitionAdversary::block_bidirectional(const std::set<ProcessId>& a,
                                             const std::set<ProcessId>& b) {
  block(a, b);
  block(b, a);
}

void PartitionAdversary::clear() { blocked_.clear(); }

bool PartitionAdversary::blocked(ProcessId from, ProcessId to) const {
  return blocked_.contains({from, to});
}

std::optional<Time> PartitionAdversary::on_send(const Envelope& env,
                                                Rng& rng) {
  if (blocked(env.from, env.to)) return std::nullopt;
  return rng.range(1, intra_max_);
}

std::optional<Time> PartitionAdversary::on_release(const Envelope& env,
                                                   Rng& rng) {
  if (blocked(env.from, env.to)) return std::nullopt;
  return rng.range(1, intra_max_);
}

std::optional<Time> GstAdversary::on_send(const Envelope& env, Rng& rng) {
  const Time sent = env.sent_at;
  if (sent >= gst_) return rng.range(1, delta_);
  // Pre-GST: random delay that may or may not cross GST, but the message is
  // always delivered by max(sent, GST) + delta.
  const Time latest_abs = gst_ + delta_;
  const Time max_delay = latest_abs - sent;
  const Time cap = std::min<Time>(max_delay, delta_ + pre_extra_);
  return rng.range(1, std::max<Time>(cap, 1));
}

}  // namespace unidir::sim
