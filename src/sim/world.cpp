#include "sim/world.h"

#include <algorithm>
#include <thread>

#include "crypto/sha256.h"

namespace unidir::sim {

// ---- Process ---------------------------------------------------------------

void Process::register_channel(Channel channel, Handler handler) {
  UNIDIR_REQUIRE(handler != nullptr);
  auto [it, inserted] = handlers_.emplace(channel, std::move(handler));
  (void)it;
  UNIDIR_REQUIRE_MSG(inserted, "channel already has a handler");
}

void Process::send(ProcessId to, Channel channel, Bytes payload) {
  world().network().send(id_, to, channel, std::move(payload));
}

void Process::broadcast(Channel channel, const Bytes& payload,
                        bool include_self) {
  World& w = world();
  // Wrap once; every per-link send below shares the same buffer.
  const Payload shared = Payload::copy_of(payload);
  for (ProcessId p = 0; p < w.size(); ++p) {
    if (p == id_ && !include_self) continue;
    w.network().send(id_, p, channel, shared);
  }
}

void Process::set_timer(Time delay, std::function<void()> fn) {
  World& w = world();
  const ProcessId self = id_;
  // Capture the incarnation at arm time: a timer armed before a crash must
  // not fire into the recovered incarnation (its closure references state
  // the model says was lost).
  const std::uint64_t epoch = w.incarnation(self);
  w.simulator().after(delay, [&w, self, epoch, fn = std::move(fn)]() {
    if (!w.crashed(self) && w.incarnation(self) == epoch) fn();
  });
}

void Process::output(std::string tag, Bytes payload) {
  world().transcript(id_).record_output(std::move(tag), std::move(payload));
}

void Process::dispatch(ProcessId from, Channel channel, const Bytes& payload) {
  auto it = handlers_.find(channel);
  if (it != handlers_.end()) {
    it->second(from, payload);
    return;
  }
  on_message(from, channel, payload);
}

// ---- World -----------------------------------------------------------------

World::World(std::uint64_t seed, std::unique_ptr<Adversary> adversary)
    : rng_(seed),
      network_(simulator_, Rng(seed ^ 0xA5A5A5A5A5A5A5A5ULL),
               std::move(adversary)) {
  network_.set_deliver([this](const Envelope& env) { deliver(env); });
  network_.set_tracer(&tracer_);
  // Tolerate out-of-range ids here (a Byzantine process can address anyone);
  // deliver() drops them.
  network_.set_crashed([this](ProcessId p) {
    return p < crashed_.size() && crashed_[p];
  });
}

void World::adopt(std::unique_ptr<Process> p) {
  const auto id = static_cast<ProcessId>(processes_.size());
  p->world_ = this;
  p->id_ = id;
  p->signer_ = keys_.generate_key();
  p->rng_ = rng_.split();
  process_keys_.push_back(p->signer_.key());
  processes_.push_back(std::move(p));
  transcripts_.emplace_back();
  durables_.emplace_back();
  epochs_.push_back(0);
  crashed_at_.push_back(0);
  crashed_.push_back(false);
  byzantine_.push_back(false);
}

void World::start() {
  UNIDIR_REQUIRE_MSG(!started_, "start() called twice");
  started_ = true;
  for (auto& p : processes_) {
    Process* raw = p.get();
    simulator_.at(0, [this, raw]() {
      if (!crashed(raw->id())) raw->on_start();
    });
  }
}

std::size_t World::run_to_quiescence(std::size_t max_events) {
  return simulator_.run(max_events);
}

bool World::run_until(const std::function<bool()>& pred,
                      std::size_t max_events) {
  return simulator_.run_until(pred, max_events);
}

Process& World::process(ProcessId id) {
  UNIDIR_REQUIRE(id < processes_.size());
  return *processes_[id];
}

crypto::KeyId World::key_of(ProcessId id) const {
  UNIDIR_REQUIRE(id < process_keys_.size());
  return process_keys_[id];
}

ProcessId World::owner_of(crypto::KeyId key) const {
  for (ProcessId p = 0; p < process_keys_.size(); ++p)
    if (process_keys_[p] == key) return p;
  return kNoProcess;
}

void World::crash(ProcessId id) {
  UNIDIR_REQUIRE(id < crashed_.size());
  if (!crashed_[id]) {
    crashed_at_[id] = simulator_.now();
    tracer_.instant("crash", "fault", id, simulator_.now());
  }
  crashed_[id] = true;
}

bool World::crashed(ProcessId id) const {
  UNIDIR_REQUIRE(id < crashed_.size());
  return crashed_[id];
}

void World::restart(ProcessId id) {
  UNIDIR_REQUIRE(id < crashed_.size());
  UNIDIR_REQUIRE_MSG(crashed_[id], "restart of a process that is not down");
  crashed_[id] = false;
  ++epochs_[id];
  const Time down = simulator_.now() - crashed_at_[id];
  tracer_.complete("down", "fault", id, crashed_at_[id], down);
  metrics_.histogram("fault.down_ticks").record(down);
  metrics_.add("fault.restarts");
  // Recovery runs synchronously: sends and timers it issues are scheduled
  // from `now`, exactly as if the process's recovery code ran at the instant
  // power came back.
  processes_[id]->on_recover(durables_[id]);
}

DurableStore& World::durable(ProcessId id) {
  UNIDIR_REQUIRE(id < durables_.size());
  return durables_[id];
}

std::uint64_t World::incarnation(ProcessId id) const {
  UNIDIR_REQUIRE(id < epochs_.size());
  return epochs_[id];
}

void World::mark_byzantine(ProcessId id) {
  UNIDIR_REQUIRE(id < byzantine_.size());
  byzantine_[id] = true;
}

bool World::byzantine(ProcessId id) const {
  UNIDIR_REQUIRE(id < byzantine_.size());
  return byzantine_[id];
}

std::vector<ProcessId> World::correct_ids() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < processes_.size(); ++p)
    if (correct(p)) out.push_back(p);
  return out;
}

std::size_t World::fault_count() const {
  std::size_t n = 0;
  for (ProcessId p = 0; p < processes_.size(); ++p)
    if (!correct(p)) ++n;
  return n;
}

Transcript& World::transcript(ProcessId id) {
  UNIDIR_REQUIRE(id < transcripts_.size());
  return transcripts_[id];
}

const Transcript& World::transcript(ProcessId id) const {
  UNIDIR_REQUIRE(id < transcripts_.size());
  return transcripts_[id];
}

void World::publish_stats() {
  // set_counter (not add): publishing is idempotent, so callers may refresh
  // mid-run and again at the end. SimulatorStats::run_wall_ns stays out —
  // it is wall-clock and would break snapshot determinism.
  const SimulatorStats& sim = simulator_.stats();
  metrics_.set_counter("sim.scheduled", sim.scheduled);
  metrics_.set_counter("sim.executed", sim.executed);
  metrics_.set_counter("sim.ring_fast_path", sim.ring_fast_path);
  metrics_.set_counter("sim.heap_events", sim.heap_events);
  metrics_.set_gauge("sim.peak_pending",
                     static_cast<std::int64_t>(sim.peak_pending));

  const NetworkStats& net = network_.stats();
  metrics_.set_counter("net.messages_sent", net.messages_sent);
  metrics_.set_counter("net.messages_delivered", net.messages_delivered);
  metrics_.set_counter("net.messages_dropped", net.messages_dropped);
  metrics_.set_counter("net.dropped_crashed", net.dropped_crashed);
  metrics_.set_counter("net.dropped_held", net.dropped_held);
  metrics_.set_counter("net.messages_held", net.messages_held);
  metrics_.set_counter("net.messages_duplicated", net.messages_duplicated);
  metrics_.set_counter("net.messages_mutated", net.messages_mutated);
  metrics_.set_counter("net.bytes_sent", net.bytes_sent);
  metrics_.set_counter("net.bytes_delivered", net.bytes_delivered);
  metrics_.set_counter("net.bytes_dropped", net.bytes_dropped);
  metrics_.set_counter("net.bytes_held", net.bytes_held);
  metrics_.set_counter("net.bytes_duplicated", net.bytes_duplicated);
  metrics_.set_counter("net.bytes_mutation_added", net.bytes_mutation_added);
  metrics_.set_counter("net.bytes_mutation_removed",
                       net.bytes_mutation_removed);

  const crypto::VerifyStats& sig = keys_.verify_stats();
  metrics_.set_counter("sig.verifies", sig.verifies);
  metrics_.set_counter("sig.memo_hits", sig.memo_hits);
  metrics_.set_counter("sig.macs", sig.macs);
  metrics_.set_counter("sig.batches", sig.batches);
  metrics_.set_counter("sig.batch_jobs", sig.batch_jobs);
  metrics_.set_counter("sig.lane_macs", sig.lane_macs);
  // Backend width, not workload: how many streams one compression call
  // interleaves. A gauge so dashboards can normalize lane_macs by it.
  metrics_.set_gauge("sig.lanes",
                     static_cast<std::int64_t>(crypto::Sha256::batch_lanes()));

  // Runner counters are deterministic for a given verify_threads setting
  // (they count submissions and epochs, never worker progress), but they do
  // depend on the setting itself — it decides whether batches shard at all.
  // That is config, not scheduling: same seed + same knobs = same snapshot.
  if (verify_runner_ != nullptr) {
    const crypto::VerifyRunner::Stats rs = verify_runner_->stats();
    metrics_.set_counter("runner.submitted", rs.submitted);
    metrics_.set_counter("runner.released", rs.released);
    metrics_.set_counter("runner.flushes", rs.flushes);
    metrics_.set_gauge("runner.max_queue_depth",
                       static_cast<std::int64_t>(rs.max_queue_depth));
    metrics_.set_gauge("runner.threads",
                       static_cast<std::int64_t>(verify_runner_->threads()));
  }

  metrics_.set_counter("wire.received", wire_stats_.total_received());
  metrics_.set_counter("wire.dropped_malformed",
                       wire_stats_.total_dropped_malformed());
  metrics_.set_counter("wire.dropped_unknown_tag",
                       wire_stats_.total_dropped_unknown_tag());
  metrics_.set_counter("wire.dropped", wire_stats_.total_dropped());
  // Grouped-verification demand from the protocol handlers: jobs/batches
  // is the mean batch occupancy the quorum messages actually produced.
  metrics_.set_counter("wire.verify_jobs", wire_stats_.total_verify_jobs());
  metrics_.set_counter("wire.verify_batches",
                       wire_stats_.total_verify_batches());
}

void World::set_verify_threads(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 1;
  }
  // Detach before replacing: the registry must never hold a pointer to a
  // runner that is being destroyed.
  keys_.attach_runner(nullptr);
  verify_runner_ = std::make_unique<crypto::VerifyRunner>(threads);
  keys_.attach_runner(verify_runner_.get());
}

void World::deliver(const Envelope& env) {
  // Messages addressed to ids that don't exist (e.g. a Byzantine process
  // naming a bogus client) vanish, as on a real network.
  if (env.to >= processes_.size()) return;
  transcripts_[env.to].record_message(env.from, env.channel, env.payload);
  processes_[env.to]->dispatch(env.from, env.channel, env.payload.bytes());
}

}  // namespace unidir::sim
