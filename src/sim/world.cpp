#include "sim/world.h"

#include <algorithm>
#include <thread>

#include "crypto/sha256.h"

namespace unidir::sim {

// ---- Process ---------------------------------------------------------------

void Process::register_channel(Channel channel, Handler handler) {
  UNIDIR_REQUIRE(handler != nullptr);
  auto [it, inserted] = handlers_.emplace(channel, std::move(handler));
  (void)it;
  UNIDIR_REQUIRE_MSG(inserted, "channel already has a handler");
}

void Process::send(ProcessId to, Channel channel, Bytes payload) {
  world().send_message(id_, to, channel, std::move(payload));
}

void Process::broadcast(Channel channel, const Bytes& payload,
                        bool include_self) {
  World& w = world();
  // Wrap once; every per-link send below shares the same buffer.
  const Payload shared = Payload::copy_of(payload);
  for (ProcessId p = 0; p < w.size(); ++p) {
    if (p == id_ && !include_self) continue;
    w.send_message(id_, p, channel, shared);
  }
}

void Process::set_timer(Time delay, std::function<void()> fn) {
  World& w = world();
  const ProcessId self = id_;
  // Capture the incarnation at arm time: a timer armed before a crash must
  // not fire into the recovered incarnation (its closure references state
  // the model says was lost). The filter sits above the Clock interface so
  // the guarantee is backend-independent.
  //
  // arm_for, not clock().arm: on a sharded backend the callback touches
  // this process's state, so it must fire on this process's shard.
  const std::uint64_t epoch = w.incarnation(self);
  w.runtime().arm_for(self, delay, [&w, self, epoch, fn = std::move(fn)]() {
    if (!w.crashed(self) && w.incarnation(self) == epoch) fn();
  });
}

void Process::output(std::string tag, Bytes payload) {
  world().transcript(id_).record_output(std::move(tag), std::move(payload));
}

void Process::dispatch(ProcessId from, Channel channel, const Bytes& payload) {
  auto it = handlers_.find(channel);
  if (it != handlers_.end()) {
    it->second(from, payload);
    return;
  }
  on_message(from, channel, payload);
}

// ---- World -----------------------------------------------------------------

World::World(std::uint64_t seed, std::unique_ptr<Adversary> adversary)
    : World(seed, std::make_unique<runtime::SimRuntime>(seed,
                                                        std::move(adversary))) {
}

World::World(std::uint64_t seed, std::unique_ptr<runtime::Runtime> rt)
    : rng_(seed), runtime_(std::move(rt)) {
  UNIDIR_REQUIRE(runtime_ != nullptr);
  sim_rt_ = dynamic_cast<runtime::SimRuntime*>(runtime_.get());
  transport_ = &runtime_->transport();
  runtime_->transport().set_deliver(
      [this](ProcessId from, ProcessId to, Channel channel,
             const Payload& payload) { deliver(from, to, channel, payload); });
  runtime_->transport().set_local([this](ProcessId p) { return is_local(p); });
  if (const std::size_t shards = runtime_->execution_shards(); shards > 1) {
    // Private observability sinks per execution shard, so handlers running
    // concurrently on different shards never touch a shared stat map.
    shard_wire_stats_.reserve(shards);
    shard_metrics_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shard_wire_stats_.push_back(std::make_unique<wire::StatsHub>());
      shard_metrics_.push_back(std::make_unique<obs::MetricsRegistry>());
    }
  }
  if (sim_rt_ != nullptr) {
    sim_rt_->network().set_tracer(&tracer_);
    // Tolerate out-of-range ids here (a Byzantine process can address
    // anyone); deliver() drops them.
    sim_rt_->network().set_crashed([this](ProcessId p) {
      return p < crashed_.size() && crashed_[p];
    });
  }
}

Simulator& World::simulator() {
  UNIDIR_CHECK_MSG(sim_rt_ != nullptr, "simulator(): not a sim-backed world");
  return sim_rt_->simulator();
}

const Simulator& World::simulator() const {
  UNIDIR_CHECK_MSG(sim_rt_ != nullptr, "simulator(): not a sim-backed world");
  return sim_rt_->simulator();
}

Network& World::network() {
  UNIDIR_CHECK_MSG(sim_rt_ != nullptr, "network(): not a sim-backed world");
  return sim_rt_->network();
}

const Network& World::network() const {
  UNIDIR_CHECK_MSG(sim_rt_ != nullptr, "network(): not a sim-backed world");
  return sim_rt_->network();
}

void World::adopt(std::unique_ptr<Process> p) {
  const auto id = static_cast<ProcessId>(processes_.size());
  p->world_ = this;
  p->id_ = id;
  p->signer_ = keys_.generate_key();
  p->rng_ = rng_.split();
  process_keys_.push_back(p->signer_.key());
  processes_.push_back(std::move(p));
  transcripts_.emplace_back();
  durables_.push_back(std::make_unique<DurableStore>());
  boot_recovering_.push_back(false);
  epochs_.push_back(0);
  crashed_at_.push_back(0);
  crashed_.push_back(false);
  byzantine_.push_back(false);
}

void World::provision(std::size_t total) {
  UNIDIR_REQUIRE_MSG(!started_, "provision after start()");
  UNIDIR_REQUIRE_MSG(!provisioned_, "provision called twice");
  UNIDIR_REQUIRE_MSG(processes_.empty(), "provision on a non-empty world");
  UNIDIR_REQUIRE(total > 0);
  provisioned_ = true;
  processes_.resize(total);  // null slots = not hosted here (yet)
  transcripts_.resize(total);
  durables_.clear();
  for (std::size_t i = 0; i < total; ++i)
    durables_.push_back(std::make_unique<DurableStore>());
  boot_recovering_.assign(total, false);
  epochs_.assign(total, 0);
  crashed_at_.assign(total, 0);
  crashed_.assign(total, false);
  byzantine_.assign(total, false);
  provisioned_signers_.reserve(total);
  provisioned_rngs_.reserve(total);
  process_keys_.reserve(total);
  // Key and rng derivation happen here, for EVERY id, in id order — this
  // is what makes the registry identical across OS processes that
  // provision the same (seed, total), regardless of which subset of ids
  // each one goes on to spawn_at.
  for (std::size_t i = 0; i < total; ++i) {
    provisioned_signers_.push_back(keys_.generate_key());
    process_keys_.push_back(provisioned_signers_.back().key());
    provisioned_rngs_.push_back(rng_.split());
  }
}

void World::place(std::unique_ptr<Process> p, ProcessId id) {
  p->world_ = this;
  p->id_ = id;
  p->signer_ = provisioned_signers_[id];
  p->rng_ = provisioned_rngs_[id];
  processes_[id] = std::move(p);
}

void World::install_durable(ProcessId id,
                            std::unique_ptr<DurableStore> store) {
  UNIDIR_REQUIRE_MSG(!started_, "install_durable after start()");
  UNIDIR_REQUIRE(id < durables_.size());
  UNIDIR_REQUIRE(store != nullptr);
  durables_[id] = std::move(store);
}

void World::boot_recovering(ProcessId id) {
  UNIDIR_REQUIRE_MSG(!started_, "boot_recovering after start()");
  UNIDIR_REQUIRE(id < boot_recovering_.size());
  boot_recovering_[id] = true;
}

void World::install_fault_plan(runtime::FaultPlan plan) {
  UNIDIR_REQUIRE_MSG(!started_, "install_fault_plan after start()");
  UNIDIR_REQUIRE_MSG(fault_transport_ == nullptr,
                     "install_fault_plan called twice");
  // FaultyTransport keeps one rng + delay queue; concurrent sends from
  // several shard loops would race them. Chaos runs use one shard.
  UNIDIR_REQUIRE_MSG(runtime_->execution_shards() == 1,
                     "install_fault_plan is not shard-safe; run with one "
                     "shard");
  fault_transport_ = std::make_unique<runtime::FaultyTransport>(
      runtime_->transport(), runtime_->clock(), std::move(plan));
  transport_ = fault_transport_.get();
}

void World::start() {
  UNIDIR_REQUIRE_MSG(!started_, "start() called twice");
  if (runtime_->execution_shards() > 1) {
    // The tracer's enabled path appends to one event vector; per-shard
    // handlers would race it. Sharded worlds are for throughput, where
    // tracing is off anyway — enforce rather than corrupt.
    UNIDIR_REQUIRE_MSG(!tracer_.enabled(),
                       "tracing is not shard-safe; disable it or run with "
                       "one shard");
  }
  started_ = true;
  for (auto& p : processes_) {
    if (p == nullptr) continue;
    Process* raw = p.get();
    if (boot_recovering_[raw->id()]) {
      // Real-process recovery boot: this incarnation rebuilds from disk the
      // way restart() rebuilds from the sim's NVRAM model, then never sees
      // on_start (the fresh-boot path would re-run trusted setup).
      runtime_->arm_for(raw->id(), 0, [this, raw]() {
        if (!crashed(raw->id())) raw->on_recover(*durables_[raw->id()]);
      });
      metrics_.add("fault.recovery_boots");
      continue;
    }
    // arm_for pins each boot event to its process's shard, like set_timer.
    runtime_->arm_for(raw->id(), 0, [this, raw]() {
      if (!crashed(raw->id())) raw->on_start();
    });
  }
}

std::size_t World::run_to_quiescence(std::size_t max_events) {
  return runtime_->run(max_events);
}

bool World::run_until(const std::function<bool()>& pred,
                      std::size_t max_events) {
  return runtime_->run_until(pred, max_events);
}

wire::StatsHub& World::wire_stats() {
  if (!shard_wire_stats_.empty()) {
    const std::size_t cs = runtime_->calling_shard();
    if (cs != runtime::kNoShard) return *shard_wire_stats_[cs];
  }
  return wire_stats_;
}

obs::MetricsRegistry& World::metrics() {
  if (!shard_metrics_.empty()) {
    const std::size_t cs = runtime_->calling_shard();
    if (cs != runtime::kNoShard) return *shard_metrics_[cs];
  }
  return metrics_;
}

void World::fold_shard_observability() {
  for (const auto& hub : shard_wire_stats_) wire_stats_.merge_from(*hub);
  for (const auto& reg : shard_metrics_) metrics_.merge_from(*reg);
}

void World::send_message(ProcessId from, ProcessId to, Channel channel,
                         Payload payload) {
  // Both backends route through their Transport: the sim's (adversary
  // scheduling, crash drops) and the real one's (loopback or UDP) — via
  // the fault decorator when a plan is installed.
  transport_->send(from, to, channel, std::move(payload));
}

Process& World::process(ProcessId id) {
  UNIDIR_REQUIRE(is_local(id));
  return *processes_[id];
}

crypto::KeyId World::key_of(ProcessId id) const {
  UNIDIR_REQUIRE(id < process_keys_.size());
  return process_keys_[id];
}

ProcessId World::owner_of(crypto::KeyId key) const {
  for (ProcessId p = 0; p < process_keys_.size(); ++p)
    if (process_keys_[p] == key) return p;
  return kNoProcess;
}

void World::crash(ProcessId id) {
  UNIDIR_REQUIRE_MSG(is_local(id), "crash of a process not hosted here");
  if (!crashed_[id]) {
    crashed_at_[id] = now();
    tracer_.instant("crash", "fault", id, now());
  }
  crashed_[id] = true;
}

bool World::crashed(ProcessId id) const {
  UNIDIR_REQUIRE(id < crashed_.size());
  return crashed_[id];
}

void World::restart(ProcessId id) {
  UNIDIR_REQUIRE_MSG(is_local(id), "restart of a process not hosted here");
  UNIDIR_REQUIRE_MSG(crashed_[id], "restart of a process that is not down");
  crashed_[id] = false;
  ++epochs_[id];
  const Time down = now() - crashed_at_[id];
  tracer_.complete("down", "fault", id, crashed_at_[id], down);
  metrics_.histogram("fault.down_ticks").record(down);
  metrics_.add("fault.restarts");
  // Recovery runs synchronously: sends and timers it issues are scheduled
  // from `now`, exactly as if the process's recovery code ran at the instant
  // power came back.
  processes_[id]->on_recover(*durables_[id]);
}

DurableStore& World::durable(ProcessId id) {
  UNIDIR_REQUIRE(id < durables_.size());
  return *durables_[id];
}

std::uint64_t World::incarnation(ProcessId id) const {
  UNIDIR_REQUIRE(id < epochs_.size());
  return epochs_[id];
}

void World::mark_byzantine(ProcessId id) {
  UNIDIR_REQUIRE(id < byzantine_.size());
  byzantine_[id] = true;
}

bool World::byzantine(ProcessId id) const {
  UNIDIR_REQUIRE(id < byzantine_.size());
  return byzantine_[id];
}

std::vector<ProcessId> World::correct_ids() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < processes_.size(); ++p)
    if (correct(p)) out.push_back(p);
  return out;
}

std::size_t World::fault_count() const {
  std::size_t n = 0;
  for (ProcessId p = 0; p < processes_.size(); ++p)
    if (!correct(p)) ++n;
  return n;
}

Transcript& World::transcript(ProcessId id) {
  UNIDIR_REQUIRE(id < transcripts_.size());
  return transcripts_[id];
}

const Transcript& World::transcript(ProcessId id) const {
  UNIDIR_REQUIRE(id < transcripts_.size());
  return transcripts_[id];
}

void World::publish_stats() {
  // set_counter (not add): publishing is idempotent, so callers may refresh
  // mid-run and again at the end. Shard sinks fold in first so the totals
  // below include every shard's handler-recorded stats.
  fold_shard_observability();
  if (sim_rt_ != nullptr) {
    // Sim-backend counters. Wall-clock figures stay out of this section —
    // a snapshot of one seed must be identical across runs (they are
    // available programmatically via runtime().stats()).
    const SimulatorStats& sim = sim_rt_->simulator().stats();
    metrics_.set_counter("sim.scheduled", sim.scheduled);
    metrics_.set_counter("sim.executed", sim.executed);
    metrics_.set_counter("sim.ring_fast_path", sim.ring_fast_path);
    metrics_.set_counter("sim.heap_events", sim.heap_events);
    metrics_.set_gauge("sim.peak_pending",
                       static_cast<std::int64_t>(sim.peak_pending));

    const NetworkStats& net = sim_rt_->network().stats();
    metrics_.set_counter("net.messages_sent", net.messages_sent);
    metrics_.set_counter("net.messages_delivered", net.messages_delivered);
    metrics_.set_counter("net.messages_dropped", net.messages_dropped);
    metrics_.set_counter("net.dropped_crashed", net.dropped_crashed);
    metrics_.set_counter("net.dropped_held", net.dropped_held);
    metrics_.set_counter("net.messages_held", net.messages_held);
    metrics_.set_counter("net.messages_duplicated", net.messages_duplicated);
    metrics_.set_counter("net.messages_mutated", net.messages_mutated);
    metrics_.set_counter("net.bytes_sent", net.bytes_sent);
    metrics_.set_counter("net.bytes_delivered", net.bytes_delivered);
    metrics_.set_counter("net.bytes_dropped", net.bytes_dropped);
    metrics_.set_counter("net.bytes_held", net.bytes_held);
    metrics_.set_counter("net.bytes_duplicated", net.bytes_duplicated);
    metrics_.set_counter("net.bytes_mutation_added", net.bytes_mutation_added);
    metrics_.set_counter("net.bytes_mutation_removed",
                         net.bytes_mutation_removed);
  } else {
    // Real-time backend: determinism is off the table by construction, so
    // honest wall-clock throughput goes into the registry.
    const runtime::RuntimeStats rs = runtime_->stats();
    metrics_.set_counter("runtime.scheduled", rs.scheduled);
    metrics_.set_counter("runtime.executed", rs.executed);
    metrics_.set_counter("runtime.run_wall_ns", rs.run_wall_ns);
    metrics_.set_gauge("runtime.events_per_sec",
                       static_cast<std::int64_t>(rs.events_per_sec()));
    // Transport health. frames_send_failed counts kernel-rejected
    // datagrams (they are NOT in frames_sent); frames_oversized counts
    // frames refused at encode time; receiver_dead means the receive
    // thread hit an unexpected errno and this process is deaf — harnesses
    // must treat that as a failed replica, not a quiet one.
    metrics_.set_counter("runtime.frames_send_failed", rs.frames_send_failed);
    metrics_.set_counter("runtime.frames_oversized", rs.frames_oversized);
    metrics_.set_gauge("runtime.receiver_dead", rs.receiver_dead ? 1 : 0);
    const std::size_t shards = runtime_->execution_shards();
    metrics_.set_gauge("runtime.shards", static_cast<std::int64_t>(shards));
    if (shards > 1) {
      for (std::size_t i = 0; i < shards; ++i) {
        const runtime::RuntimeStats ss = runtime_->shard_stats(i);
        const std::string prefix = "runtime.shard" + std::to_string(i);
        metrics_.set_counter(prefix + ".scheduled", ss.scheduled);
        metrics_.set_counter(prefix + ".executed", ss.executed);
        metrics_.set_counter(prefix + ".run_wall_ns", ss.run_wall_ns);
      }
    }
  }

  const crypto::VerifyStats& sig = keys_.verify_stats();
  metrics_.set_counter("sig.verifies", sig.verifies);
  metrics_.set_counter("sig.memo_hits", sig.memo_hits);
  metrics_.set_counter("sig.macs", sig.macs);
  metrics_.set_counter("sig.batches", sig.batches);
  metrics_.set_counter("sig.batch_jobs", sig.batch_jobs);
  metrics_.set_counter("sig.lane_macs", sig.lane_macs);
  // Backend width, not workload: how many streams one compression call
  // interleaves. A gauge so dashboards can normalize lane_macs by it.
  metrics_.set_gauge("sig.lanes",
                     static_cast<std::int64_t>(crypto::Sha256::batch_lanes()));

  // Runner counters are deterministic for a given verify_threads setting
  // (they count submissions and epochs, never worker progress), but they do
  // depend on the setting itself — it decides whether batches shard at all.
  // That is config, not scheduling: same seed + same knobs = same snapshot.
  if (verify_runner_ != nullptr) {
    const crypto::VerifyRunner::Stats rs = verify_runner_->stats();
    metrics_.set_counter("runner.submitted", rs.submitted);
    metrics_.set_counter("runner.released", rs.released);
    metrics_.set_counter("runner.flushes", rs.flushes);
    metrics_.set_gauge("runner.max_queue_depth",
                       static_cast<std::int64_t>(rs.max_queue_depth));
    metrics_.set_gauge("runner.threads",
                       static_cast<std::int64_t>(verify_runner_->threads()));
  }

  if (fault_transport_ != nullptr) {
    const runtime::FaultyTransportStats& fs = fault_transport_->stats();
    metrics_.set_counter("fault.forwarded", fs.forwarded);
    metrics_.set_counter("fault.dropped", fs.dropped);
    metrics_.set_counter("fault.partitioned", fs.partitioned);
    metrics_.set_counter("fault.duplicated", fs.duplicated);
    metrics_.set_counter("fault.delayed", fs.delayed);
    metrics_.set_counter("fault.corrupted", fs.corrupted);
  }

  metrics_.set_counter("wire.received", wire_stats_.total_received());
  metrics_.set_counter("wire.dropped_malformed",
                       wire_stats_.total_dropped_malformed());
  metrics_.set_counter("wire.dropped_unknown_tag",
                       wire_stats_.total_dropped_unknown_tag());
  metrics_.set_counter("wire.dropped", wire_stats_.total_dropped());
  // Grouped-verification demand from the protocol handlers: jobs/batches
  // is the mean batch occupancy the quorum messages actually produced.
  metrics_.set_counter("wire.verify_jobs", wire_stats_.total_verify_jobs());
  metrics_.set_counter("wire.verify_batches",
                       wire_stats_.total_verify_batches());
}

void World::set_verify_threads(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 1;
  }
  // Detach before replacing: the registry must never hold a pointer to a
  // runner that is being destroyed.
  keys_.attach_runner(nullptr);
  verify_runner_ = std::make_unique<crypto::VerifyRunner>(threads);
  keys_.attach_runner(verify_runner_.get());
}

void World::deliver(ProcessId from, ProcessId to, Channel channel,
                    const Payload& payload) {
  // Messages addressed to ids that don't exist (e.g. a Byzantine process
  // naming a bogus client) or aren't hosted here vanish, as on a real
  // network. The crashed check is what the sim network already enforced in
  // flight; on the real backend it is THE drop point for downed processes.
  if (to >= processes_.size() || processes_[to] == nullptr) return;
  if (crashed_[to]) return;
  transcripts_[to].record_message(from, channel, payload);
  processes_[to]->dispatch(from, channel, payload.bytes());
}

}  // namespace unidir::sim
