// World: wires a simulator, a network, a key registry and a set of
// processes into one executable distributed system.
//
// A Process is an event-driven state machine: it reacts to on_start, to
// received messages, and to timers. Protocol implementations either derive
// from Process directly or are *components* that attach handlers to a host
// process's channels (see register_channel), which lets e.g. an SMR replica
// host a broadcast component and a round driver side by side.
//
// Fault model: a process is `correct` unless it was crashed (the network
// silently drops its traffic from the crash point on) or marked Byzantine
// (its implementation itself misbehaves; the mark tells property checkers
// which processes the paper's guarantees quantify over).
//
// Crash-RECOVERY extension: a crashed process can be brought back with
// World::restart. The Process object survives in memory (it stands in for
// the re-executed program binary), but the model treats everything in it as
// volatile: on_recover(DurableStore&) must rebuild state from what the
// process explicitly persisted. Timers armed before the crash never fire
// after a restart — each restart bumps the process's incarnation epoch and
// set_timer checks the epoch it captured at arm time.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "common/types.h"
#include "crypto/signature.h"
#include "crypto/verify_runner.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/durable.h"
#include "sim/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/transcript.h"
#include "wire/stats.h"

namespace unidir::sim {

class World;

class Process {
 public:
  virtual ~Process() = default;
  Process() = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const { return id_; }
  World& world() const {
    UNIDIR_CHECK_MSG(world_ != nullptr, "process not spawned in a world");
    return *world_;
  }

  using Handler =
      std::function<void(ProcessId from, const Bytes& payload)>;

  /// Routes messages on `channel` to `handler` instead of on_message.
  /// Components use this to claim their channels. A channel may have only
  /// one handler.
  void register_channel(Channel channel, Handler handler);

 protected:
  /// Called once when the world starts (virtual time 0).
  virtual void on_start() {}

  /// Called for messages on channels with no registered handler.
  virtual void on_message(ProcessId from, Channel channel,
                          const Bytes& payload) {
    (void)from;
    (void)channel;
    (void)payload;
  }

  /// Called by World::restart after a crash: reload durable state and
  /// re-arm whatever timers the protocol needs. Volatile members must be
  /// treated as garbage — reset them here. Default: nothing is durable.
  virtual void on_recover(DurableStore& durable) { (void)durable; }

 public:
  // -- actions (public so attached components can drive their host) --------

  void send(ProcessId to, Channel channel, Bytes payload);
  /// Sends to every process except self (unless include_self).
  void broadcast(Channel channel, const Bytes& payload,
                 bool include_self = false);
  /// Schedules `fn` after `delay` ticks; suppressed if crashed by then.
  void set_timer(Time delay, std::function<void()> fn);
  /// Records a decision in the transcript (deliver/commit/...).
  void output(std::string tag, Bytes payload);

  const crypto::Signer& signer() const { return signer_; }
  Rng& rng() { return rng_; }

 private:
  friend class World;
  void dispatch(ProcessId from, Channel channel, const Bytes& payload);

  World* world_ = nullptr;
  ProcessId id_ = kNoProcess;
  crypto::Signer signer_;
  Rng rng_{0};
  std::map<Channel, Handler> handlers_;
};

class World {
 public:
  World(std::uint64_t seed, std::unique_ptr<Adversary> adversary);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Creates a process of type P. Processes get ids 0,1,2,... in spawn
  /// order. Must be called before start().
  template <typename P, typename... Args>
  P& spawn(Args&&... args) {
    UNIDIR_REQUIRE_MSG(!started_, "spawn after start()");
    auto p = std::make_unique<P>(std::forward<Args>(args)...);
    P& ref = *p;
    adopt(std::move(p));
    return ref;
  }

  /// Schedules every process's on_start at virtual time 0.
  void start();

  // -- execution ------------------------------------------------------------
  Simulator& simulator() { return simulator_; }
  const Simulator& simulator() const { return simulator_; }
  Network& network() { return network_; }
  const Network& network() const { return network_; }
  crypto::KeyRegistry& keys() { return keys_; }
  const crypto::KeyRegistry& keys() const { return keys_; }
  Rng& rng() { return rng_; }
  Time now() const { return simulator_.now(); }
  /// Per-channel / per-message-type wire counters, maintained by the typed
  /// routers (see wire/router.h). Lives next to the simulator and network
  /// stats so experiments read all observability from one place.
  wire::StatsHub& wire_stats() { return wire_stats_; }
  const wire::StatsHub& wire_stats() const { return wire_stats_; }

  // -- observability ----------------------------------------------------
  /// Unified registry: protocols record histograms/counters here directly;
  /// publish_stats() folds the layer stats structs in on demand.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// Virtual-time tracer, shared by the network and the protocols. Off by
  /// default; call tracer().enable() before start() to record.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  /// Publishes the simulator / network / signature / wire counters into the
  /// registry (set-semantics, so it is safe to call repeatedly). Wall-clock
  /// figures are deliberately excluded: a snapshot of one seed must be
  /// identical across runs.
  void publish_stats();

  /// Sets the signature-verification worker count and attaches the runner
  /// to the key registry. 0 resolves to one thread per hardware thread;
  /// <= 1 selects the inline serial mode (the default — no pool exists).
  /// A deliberate wall-clock-only knob: results, transcripts and
  /// fingerprints are identical for every value (see crypto/verify_runner.h
  /// for why), so tests may compare a threaded run against a serial one.
  void set_verify_threads(std::size_t threads);
  /// The resolved worker count (1 when no runner was ever configured).
  std::size_t verify_threads() const {
    return verify_runner_ != nullptr ? verify_runner_->threads() : 1;
  }
  const crypto::VerifyRunner* verify_runner() const {
    return verify_runner_.get();
  }

  /// Runs until the event queue drains (all messages delivered or held).
  /// Returns events executed.
  std::size_t run_to_quiescence(
      std::size_t max_events = Simulator::kDefaultEventCap);
  bool run_until(const std::function<bool()>& pred,
                 std::size_t max_events = Simulator::kDefaultEventCap);

  // -- membership & faults ----------------------------------------------
  std::size_t size() const { return processes_.size(); }
  Process& process(ProcessId id);
  crypto::KeyId key_of(ProcessId id) const;
  /// The process id owning a key, or kNoProcess.
  ProcessId owner_of(crypto::KeyId key) const;

  void crash(ProcessId id);
  bool crashed(ProcessId id) const;
  /// Brings a crashed process back: clears the crash flag, bumps the
  /// incarnation epoch (cancelling pre-crash timers) and synchronously runs
  /// the process's on_recover against its DurableStore.
  void restart(ProcessId id);
  /// The per-process persistent store; survives restart().
  DurableStore& durable(ProcessId id);
  /// Starts at 0 and increments on every restart().
  std::uint64_t incarnation(ProcessId id) const;
  /// Marks a process as Byzantine for property checkers. The process's own
  /// implementation is responsible for actually misbehaving.
  void mark_byzantine(ProcessId id);
  bool byzantine(ProcessId id) const;
  bool correct(ProcessId id) const { return !crashed(id) && !byzantine(id); }
  std::vector<ProcessId> correct_ids() const;
  std::size_t fault_count() const;

  Transcript& transcript(ProcessId id);
  const Transcript& transcript(ProcessId id) const;

 private:
  friend class Process;
  void adopt(std::unique_ptr<Process> p);
  void deliver(const Envelope& env);

  Simulator simulator_;
  Rng rng_;
  Network network_;
  wire::StatsHub wire_stats_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  // Declared before keys_ so the registry (which holds a non-owning pointer
  // to the runner while attached) is destroyed first.
  std::unique_ptr<crypto::VerifyRunner> verify_runner_;
  crypto::KeyRegistry keys_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Transcript> transcripts_;
  std::vector<crypto::KeyId> process_keys_;
  std::vector<DurableStore> durables_;
  std::vector<std::uint64_t> epochs_;
  std::vector<Time> crashed_at_;
  std::vector<bool> crashed_;
  std::vector<bool> byzantine_;
  bool started_ = false;
};

}  // namespace unidir::sim
