// World: wires a runtime, a key registry and a set of processes into one
// executable distributed system.
//
// A Process is an event-driven state machine: it reacts to on_start, to
// received messages, and to timers. Protocol implementations either derive
// from Process directly or are *components* that attach handlers to a host
// process's channels (see register_channel), which lets e.g. an SMR replica
// host a broadcast component and a round driver side by side.
//
// Execution backend: the World owns a runtime::Runtime (runtime/runtime.h)
// and speaks only its Clock/Transport/run interfaces, so the same protocol
// code runs on two substrates:
//
//  * SimRuntime (the default, and what the seed-and-adversary constructor
//    builds): the deterministic discrete-event simulator. All sim-only
//    machinery — the adversary, crash/restart, transcript fingerprints,
//    record/replay — lives behind simulator()/network(), which are only
//    available on this backend.
//  * RealRuntime: wall-clock ticks and a UDP transport. A World then hosts
//    the subset of the global ProcessId space that lives in this OS
//    process (see provision/spawn_at); sends to the rest leave through the
//    runtime's peer table.
//
// Fault model: a process is `correct` unless it was crashed (the network
// silently drops its traffic from the crash point on) or marked Byzantine
// (its implementation itself misbehaves; the mark tells property checkers
// which processes the paper's guarantees quantify over).
//
// Crash-RECOVERY extension: a crashed process can be brought back with
// World::restart. The Process object survives in memory (it stands in for
// the re-executed program binary), but the model treats everything in it as
// volatile: on_recover(DurableStore&) must rebuild state from what the
// process explicitly persisted. Timers armed before the crash never fire
// after a restart — each restart bumps the process's incarnation epoch and
// set_timer checks the epoch it captured at arm time. The epoch check
// lives HERE, above the Clock interface, so it holds identically on both
// backends.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "common/payload.h"
#include "common/types.h"
#include "crypto/signature.h"
#include "crypto/verify_runner.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "runtime/fault.h"
#include "runtime/runtime.h"
#include "runtime/sim_runtime.h"
#include "sim/durable.h"
#include "sim/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/transcript.h"
#include "wire/stats.h"

namespace unidir::sim {

class World;

class Process {
 public:
  virtual ~Process() = default;
  Process() = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const { return id_; }
  World& world() const {
    UNIDIR_CHECK_MSG(world_ != nullptr, "process not spawned in a world");
    return *world_;
  }

  using Handler =
      std::function<void(ProcessId from, const Bytes& payload)>;

  /// Routes messages on `channel` to `handler` instead of on_message.
  /// Components use this to claim their channels. A channel may have only
  /// one handler.
  void register_channel(Channel channel, Handler handler);

 protected:
  /// Called once when the world starts (virtual time 0).
  virtual void on_start() {}

  /// Called for messages on channels with no registered handler.
  virtual void on_message(ProcessId from, Channel channel,
                          const Bytes& payload) {
    (void)from;
    (void)channel;
    (void)payload;
  }

  /// Called by World::restart after a crash: reload durable state and
  /// re-arm whatever timers the protocol needs. Volatile members must be
  /// treated as garbage — reset them here. Default: nothing is durable.
  virtual void on_recover(DurableStore& durable) { (void)durable; }

 public:
  // -- actions (public so attached components can drive their host) --------

  void send(ProcessId to, Channel channel, Bytes payload);
  /// Sends to every process except self (unless include_self).
  void broadcast(Channel channel, const Bytes& payload,
                 bool include_self = false);
  /// Schedules `fn` after `delay` ticks; suppressed if crashed by then.
  void set_timer(Time delay, std::function<void()> fn);
  /// Records a decision in the transcript (deliver/commit/...).
  void output(std::string tag, Bytes payload);

  const crypto::Signer& signer() const { return signer_; }
  Rng& rng() { return rng_; }

 private:
  friend class World;
  void dispatch(ProcessId from, Channel channel, const Bytes& payload);

  World* world_ = nullptr;
  ProcessId id_ = kNoProcess;
  crypto::Signer signer_;
  Rng rng_{0};
  std::map<Channel, Handler> handlers_;
};

class World {
 public:
  /// The classic form: a fully simulated world. Equivalent to handing the
  /// runtime constructor a SimRuntime built from the same seed — and
  /// bit-compatible with every pre-runtime execution.
  World(std::uint64_t seed, std::unique_ptr<Adversary> adversary);

  /// Runs this world on an explicit backend. `seed` feeds the world's own
  /// Rng stream (process rngs, workload generators); the backend's
  /// scheduling randomness, if any, is its own.
  World(std::uint64_t seed, std::unique_ptr<runtime::Runtime> rt);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Creates a process of type P. Processes get ids 0,1,2,... in spawn
  /// order. Must be called before start(). Mutually exclusive with
  /// provision()/spawn_at().
  template <typename P, typename... Args>
  P& spawn(Args&&... args) {
    UNIDIR_REQUIRE_MSG(!started_, "spawn after start()");
    UNIDIR_REQUIRE_MSG(!provisioned_, "spawn on a provisioned world");
    auto p = std::make_unique<P>(std::forward<Args>(args)...);
    P& ref = *p;
    adopt(std::move(p));
    return ref;
  }

  /// Declares the GLOBAL id space [0, total) without creating processes,
  /// generating every process's key and rng stream in id order. Because
  /// key generation is deterministic (crypto/signature.h), every OS
  /// process that provisions the same total from the same seed derives the
  /// SAME key registry — the simulated PKI doubles as the distributed
  /// trusted setup. Follow with spawn_at() for the ids hosted here;
  /// unfilled slots are remote (or absent), and sends to them go to the
  /// runtime's transport.
  void provision(std::size_t total);

  /// Creates the process for global id `id` in a provisioned world.
  template <typename P, typename... Args>
  P& spawn_at(ProcessId id, Args&&... args) {
    UNIDIR_REQUIRE_MSG(provisioned_, "spawn_at needs provision() first");
    UNIDIR_REQUIRE_MSG(!started_, "spawn after start()");
    UNIDIR_REQUIRE(id < processes_.size());
    UNIDIR_REQUIRE_MSG(processes_[id] == nullptr, "id already spawned");
    auto p = std::make_unique<P>(std::forward<Args>(args)...);
    P& ref = *p;
    place(std::move(p), id);
    return ref;
  }

  /// Schedules every local process's on_start at tick 0 (in id order).
  /// Processes marked via boot_recovering get on_recover instead.
  void start();

  /// Replaces process `id`'s durable store (default: the in-memory model)
  /// with `store` — e.g. a runtime::FileDurableStore, whose already-loaded
  /// image then feeds on_recover after a real-process restart. Must precede
  /// start().
  void install_durable(ProcessId id, std::unique_ptr<DurableStore> store);

  /// Marks `id` to boot through on_recover(durable) instead of on_start —
  /// the real-process analogue of restart(): the OS process died and this
  /// incarnation must rebuild from its durable store. Must precede start().
  void boot_recovering(ProcessId id);

  /// Interposes a runtime::FaultyTransport between every send and the
  /// backend transport. Works on both backends; must precede start() so no
  /// message bypasses it. Stats surface via publish_stats() ("fault.*")
  /// and fault_stats().
  void install_fault_plan(runtime::FaultPlan plan);
  const runtime::FaultyTransportStats* fault_stats() const {
    return fault_transport_ == nullptr ? nullptr : &fault_transport_->stats();
  }

  // -- execution ------------------------------------------------------------
  /// The execution backend. Most callers want the wrappers below; direct
  /// access is for arming raw (epoch-unfiltered) timers and reading
  /// RuntimeStats.
  runtime::Runtime& runtime() { return *runtime_; }
  const runtime::Runtime& runtime() const { return *runtime_; }
  /// True when this world runs on the deterministic simulator backend.
  bool simulated() const { return sim_rt_ != nullptr; }

  /// Sim-backend-only accessors (adversary control, held messages, virtual
  /// time internals, record/replay). Throw on a real-time backend — code
  /// that needs them is by definition sim-only.
  Simulator& simulator();
  const Simulator& simulator() const;
  Network& network();
  const Network& network() const;

  crypto::KeyRegistry& keys() { return keys_; }
  const crypto::KeyRegistry& keys() const { return keys_; }
  Rng& rng() { return rng_; }
  Time now() const { return runtime_->clock().now(); }

  /// Routes one message: in-memory via the sim network or loopback, or out
  /// a UDP socket — the runtime decides per destination. The single choke
  /// point every Process::send, broadcast and wire helper goes through.
  void send_message(ProcessId from, ProcessId to, Channel channel,
                    Payload payload);
  void send_message(ProcessId from, ProcessId to, Channel channel,
                    Bytes payload) {
    send_message(from, to, channel, Payload(std::move(payload)));
  }

  /// Per-channel / per-message-type wire counters, maintained by the typed
  /// routers (see wire/router.h). Lives next to the runtime and network
  /// stats so experiments read all observability from one place.
  ///
  /// Shard routing: on a sharded RealRuntime, a handler running on shard k
  /// gets shard k's PRIVATE hub (same for metrics()), so concurrent
  /// handlers never contend or race on the stat maps. The per-shard hubs
  /// are folded into the primary by fold_shard_observability() — which
  /// publish_stats() calls — so totals read between runs include every
  /// shard's traffic. Reading totals WHILE loops run sees only the primary
  /// (plus whatever was already folded); poll runtime().stats() for live
  /// progress instead.
  wire::StatsHub& wire_stats();
  const wire::StatsHub& wire_stats() const { return wire_stats_; }

  // -- observability ----------------------------------------------------
  /// Unified registry: protocols record histograms/counters here directly;
  /// publish_stats() folds the layer stats structs in on demand. Shard
  /// routing as for wire_stats().
  obs::MetricsRegistry& metrics();
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Drains every execution shard's private StatsHub/MetricsRegistry into
  /// the primaries. Must not race the loops: call between runs (or from a
  /// run_until predicate, which executes on shard 0 — but then shards
  /// other than 0 must be quiescent). Idempotent; publish_stats() calls it.
  void fold_shard_observability();
  /// Virtual-time tracer, shared by the network and the protocols. Off by
  /// default; call tracer().enable() before start() to record.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  /// Publishes the backend / network / signature / wire counters into the
  /// registry (set-semantics, so it is safe to call repeatedly). Under the
  /// sim backend, wall-clock figures are deliberately excluded: a snapshot
  /// of one seed must be identical across runs. Under a real-time backend
  /// that guarantee is void anyway, so honest wall-clock rates (runtime.*)
  /// are published too.
  void publish_stats();

  /// Sets the signature-verification worker count and attaches the runner
  /// to the key registry. 0 resolves to one thread per hardware thread;
  /// <= 1 selects the inline serial mode (the default — no pool exists).
  /// A deliberate wall-clock-only knob: results, transcripts and
  /// fingerprints are identical for every value (see crypto/verify_runner.h
  /// for why), so tests may compare a threaded run against a serial one.
  void set_verify_threads(std::size_t threads);
  /// The resolved worker count (1 when no runner was ever configured).
  std::size_t verify_threads() const {
    return verify_runner_ != nullptr ? verify_runner_->threads() : 1;
  }
  const crypto::VerifyRunner* verify_runner() const {
    return verify_runner_.get();
  }

  /// Runs until the event queue drains (all messages delivered or held).
  /// Returns events executed. On a socket-bound real-time backend the
  /// queue never provably drains; use run_until or Runtime::stop there.
  std::size_t run_to_quiescence(
      std::size_t max_events = Simulator::kDefaultEventCap);
  bool run_until(const std::function<bool()>& pred,
                 std::size_t max_events = Simulator::kDefaultEventCap);

  // -- membership & faults ----------------------------------------------
  /// Size of the GLOBAL id space (provisioned total, or processes spawned).
  std::size_t size() const { return processes_.size(); }
  /// True iff `id` names a process hosted in this World (always, for a
  /// plain spawned world; the filled slots, for a provisioned one).
  bool is_local(ProcessId id) const {
    return id < processes_.size() && processes_[id] != nullptr;
  }
  Process& process(ProcessId id);
  crypto::KeyId key_of(ProcessId id) const;
  /// The process id owning a key, or kNoProcess.
  ProcessId owner_of(crypto::KeyId key) const;

  void crash(ProcessId id);
  bool crashed(ProcessId id) const;
  /// Brings a crashed process back: clears the crash flag, bumps the
  /// incarnation epoch (cancelling pre-crash timers) and synchronously runs
  /// the process's on_recover against its DurableStore.
  void restart(ProcessId id);
  /// The per-process persistent store; survives restart().
  DurableStore& durable(ProcessId id);
  /// Starts at 0 and increments on every restart().
  std::uint64_t incarnation(ProcessId id) const;
  /// Marks a process as Byzantine for property checkers. The process's own
  /// implementation is responsible for actually misbehaving.
  void mark_byzantine(ProcessId id);
  bool byzantine(ProcessId id) const;
  bool correct(ProcessId id) const { return !crashed(id) && !byzantine(id); }
  std::vector<ProcessId> correct_ids() const;
  std::size_t fault_count() const;

  Transcript& transcript(ProcessId id);
  const Transcript& transcript(ProcessId id) const;

 private:
  friend class Process;
  void adopt(std::unique_ptr<Process> p);
  void place(std::unique_ptr<Process> p, ProcessId id);
  void deliver(ProcessId from, ProcessId to, Channel channel,
               const Payload& payload);

  Rng rng_;
  std::unique_ptr<runtime::Runtime> runtime_;
  runtime::SimRuntime* sim_rt_ = nullptr;  // non-null iff sim backend
  // Send path: the backend transport, or the fault decorator wrapping it.
  std::unique_ptr<runtime::FaultyTransport> fault_transport_;
  runtime::Transport* transport_ = nullptr;
  wire::StatsHub wire_stats_;
  obs::MetricsRegistry metrics_;
  // One private hub/registry per execution shard (index = shard), created
  // only when the backend is sharded; folded into the primaries above by
  // fold_shard_observability().
  std::vector<std::unique_ptr<wire::StatsHub>> shard_wire_stats_;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> shard_metrics_;
  obs::Tracer tracer_;
  // Declared before keys_ so the registry (which holds a non-owning pointer
  // to the runner while attached) is destroyed first.
  std::unique_ptr<crypto::VerifyRunner> verify_runner_;
  crypto::KeyRegistry keys_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Transcript> transcripts_;
  std::vector<crypto::KeyId> process_keys_;
  std::vector<std::unique_ptr<DurableStore>> durables_;
  std::vector<bool> boot_recovering_;
  std::vector<std::uint64_t> epochs_;
  std::vector<Time> crashed_at_;
  std::vector<bool> crashed_;
  std::vector<bool> byzantine_;
  // Credentials generated up front by provision(), consumed by spawn_at.
  std::vector<crypto::Signer> provisioned_signers_;
  std::vector<Rng> provisioned_rngs_;
  bool provisioned_ = false;
  bool started_ = false;
};

}  // namespace unidir::sim
