#include "shmem/peats.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace unidir::shmem {

bool TupleTemplate::matches(const Tuple& t) const {
  if (t.size() != fields.size()) return false;
  for (std::size_t i = 0; i < fields.size(); ++i)
    if (fields[i].has_value() && *fields[i] != t[i]) return false;
  return true;
}

TupleTemplate TupleTemplate::any(std::size_t arity) {
  TupleTemplate t;
  t.fields.resize(arity);
  return t;
}

TupleTemplate TupleTemplate::tagged(Bytes tag, std::size_t arity) {
  UNIDIR_REQUIRE(arity >= 1);
  TupleTemplate t;
  t.fields.resize(arity);
  t.fields[0] = std::move(tag);
  return t;
}

Peats::Peats() : policy_(allow_all()) {}

Peats::Peats(PeatsPolicy policy) : policy_(std::move(policy)) {
  UNIDIR_REQUIRE(policy_ != nullptr);
}

bool Peats::out(ProcessId caller, Tuple tuple) {
  PeatsRequest req;
  req.op = PeatsOp::Out;
  req.caller = caller;
  req.tuple = &tuple;
  if (!policy_(req, *this)) return false;
  tuples_.push_back(std::move(tuple));
  return true;
}

std::optional<Tuple> Peats::rdp(ProcessId caller,
                                const TupleTemplate& pattern) const {
  PeatsRequest req;
  req.op = PeatsOp::Rdp;
  req.caller = caller;
  req.pattern = &pattern;
  if (!policy_(req, *this)) return std::nullopt;
  for (const Tuple& t : tuples_)
    if (pattern.matches(t)) return t;
  return std::nullopt;
}

std::vector<Tuple> Peats::rdp_all(ProcessId caller,
                                  const TupleTemplate& pattern) const {
  PeatsRequest req;
  req.op = PeatsOp::Rdp;
  req.caller = caller;
  req.pattern = &pattern;
  std::vector<Tuple> out;
  if (!policy_(req, *this)) return out;
  for (const Tuple& t : tuples_)
    if (pattern.matches(t)) out.push_back(t);
  return out;
}

std::optional<Tuple> Peats::inp(ProcessId caller,
                                const TupleTemplate& pattern) {
  PeatsRequest req;
  req.op = PeatsOp::Inp;
  req.caller = caller;
  req.pattern = &pattern;
  if (!policy_(req, *this)) return std::nullopt;
  for (auto it = tuples_.begin(); it != tuples_.end(); ++it) {
    if (pattern.matches(*it)) {
      Tuple out = std::move(*it);
      tuples_.erase(it);
      return out;
    }
  }
  return std::nullopt;
}

std::optional<Tuple> Peats::cas(ProcessId caller, const TupleTemplate& pattern,
                                Tuple tuple) {
  PeatsRequest req;
  req.op = PeatsOp::Cas;
  req.caller = caller;
  req.pattern = &pattern;
  req.tuple = &tuple;
  if (!policy_(req, *this)) return std::nullopt;
  for (const Tuple& t : tuples_)
    if (pattern.matches(t)) return t;
  tuples_.push_back(std::move(tuple));
  return std::nullopt;
}

std::size_t Peats::count(const TupleTemplate& pattern) const {
  return static_cast<std::size_t>(
      std::count_if(tuples_.begin(), tuples_.end(),
                    [&](const Tuple& t) { return pattern.matches(t); }));
}

PeatsPolicy Peats::allow_all() {
  return [](const PeatsRequest&, const Peats&) { return true; };
}

PeatsPolicy Peats::single_writer(ProcessId owner) {
  return [owner](const PeatsRequest& req, const Peats&) {
    switch (req.op) {
      case PeatsOp::Out:
      case PeatsOp::Cas:
        return req.caller == owner;
      case PeatsOp::Rdp:
        return true;
      case PeatsOp::Inp:
        return false;
    }
    return false;
  };
}

PeatsPolicy Peats::one_out_per_process() {
  return [](const PeatsRequest& req, const Peats& space) {
    if (req.op == PeatsOp::Rdp) return true;
    if (req.op != PeatsOp::Out) return false;
    UNIDIR_CHECK(req.tuple != nullptr);
    if (req.tuple->empty()) return false;
    // First field must be the caller's id, and the caller must not have
    // placed a tuple already — a state-dependent check no static ACL can
    // express.
    const Bytes self_tag = bytes_of(std::to_string(req.caller));
    if ((*req.tuple)[0] != self_tag) return false;
    TupleTemplate mine = TupleTemplate::tagged(self_tag, req.tuple->size());
    return space.count(mine) == 0;
  };
}

PeatsPolicy Peats::both(PeatsPolicy a, PeatsPolicy b) {
  UNIDIR_REQUIRE(a != nullptr && b != nullptr);
  return [a = std::move(a), b = std::move(b)](const PeatsRequest& req,
                                              const Peats& space) {
    return a(req, space) && b(req, space);
  };
}

}  // namespace unidir::shmem
