// Asynchronous linearizable shared memory.
//
// The paper's shared-memory trusted hardware (SWMR registers, sticky bits,
// PEATS) lives in a memory that processes access *asynchronously*: an
// operation is invoked, takes effect atomically at some later linearization
// point, and its response returns to the caller later still. The adversary
// chooses both delays, which lets it order concurrent operations any
// admissible way — the strongest scheduling behaviour linearizability
// allows, and the model under which the paper's Claim (shared memory ⇒
// unidirectionality) is proved.
//
// Mechanically, an operation is a closure: MemoryHost::invoke schedules the
// closure to run at the linearization event (the simulator is sequential,
// so the closure is atomic by construction) and delivers the closure's
// return value to the caller's continuation at the response event.
#pragma once

#include <functional>
#include <utility>

#include "common/check.h"
#include "common/types.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace unidir::shmem {

struct MemoryOptions {
  /// Linearization happens in [1, max_to_linearize] ticks after invocation.
  Time max_to_linearize = 3;
  /// The response returns in [1, max_to_respond] ticks after linearization.
  Time max_to_respond = 3;
};

class MemoryHost {
 public:
  MemoryHost(sim::Simulator& simulator, sim::Rng rng, MemoryOptions options = {});
  MemoryHost(const MemoryHost&) = delete;
  MemoryHost& operator=(const MemoryHost&) = delete;

  /// Queried at response time; responses to crashed callers are dropped.
  void set_crashed(std::function<bool(ProcessId)> fn) {
    crashed_ = std::move(fn);
  }

  /// Invokes `op` on behalf of `caller`. `op` runs atomically at the
  /// linearization point and must be a pure function of the shared object
  /// state it captures; its result reaches `done` at response time (unless
  /// the caller crashed meanwhile).
  template <typename R>
  void invoke(ProcessId caller, std::function<R()> op,
              std::function<void(R)> done) {
    UNIDIR_REQUIRE(op != nullptr);
    UNIDIR_REQUIRE(done != nullptr);
    ++stats_invocations_;
    const Time lin_delay = rng_.range(1, options_.max_to_linearize);
    simulator_.after(lin_delay, [this, caller, op = std::move(op),
                                 done = std::move(done)]() mutable {
      R result = op();
      const Time resp_delay = rng_.range(1, options_.max_to_respond);
      simulator_.after(resp_delay, [this, caller, result = std::move(result),
                                    done = std::move(done)]() mutable {
        if (crashed_ && crashed_(caller)) return;
        ++stats_responses_;
        done(std::move(result));
      });
    });
  }

  std::uint64_t invocations() const { return stats_invocations_; }
  std::uint64_t responses() const { return stats_responses_; }

 private:
  sim::Simulator& simulator_;
  sim::Rng rng_;
  MemoryOptions options_;
  std::function<bool(ProcessId)> crashed_;
  std::uint64_t stats_invocations_ = 0;
  std::uint64_t stats_responses_ = 0;
};

}  // namespace unidir::shmem
