// PEATS: Policy-Enforced Augmented Tuple Space (Bessani et al., "Sharing
// memory between Byzantine processes using policy-enforced tuple spaces").
//
// A tuple space stores tuples (sequences of byte-string fields) and supports
//   out(t)    — insert tuple t
//   rdp(T)    — read (non-destructively) some tuple matching template T
//   inp(T)    — remove and return some tuple matching template T
//   cas(T, t) — "conditional atomic swap": insert t iff nothing matches T,
//               otherwise return the match (the "augmented" operation)
// A template is a tuple with optional wildcard fields.
//
// What distinguishes PEATS from plain ACLs: admission is decided by a
// *policy* — a predicate over the operation, the caller, AND the current
// state of the space — enforced atomically at the linearization point.
// Static ACLs are the special case of state-independent policies.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace unidir::shmem {

using Tuple = std::vector<Bytes>;

/// A tuple pattern: nullopt fields are wildcards. Matches tuples of the
/// same arity whose concrete fields are equal.
struct TupleTemplate {
  std::vector<std::optional<Bytes>> fields;

  bool matches(const Tuple& t) const;

  /// Template with every field a wildcard.
  static TupleTemplate any(std::size_t arity);
  /// Template matching tuples whose first field equals `tag` (a common
  /// idiom: the first field names the datum).
  static TupleTemplate tagged(Bytes tag, std::size_t arity);
};

enum class PeatsOp : std::uint8_t { Out, Rdp, Inp, Cas };

class Peats;

/// Admission context handed to the policy.
struct PeatsRequest {
  PeatsOp op = PeatsOp::Out;
  ProcessId caller = kNoProcess;
  const Tuple* tuple = nullptr;            // for Out / Cas
  const TupleTemplate* pattern = nullptr;  // for Rdp / Inp / Cas
};

/// Returns true to admit the operation. Evaluated atomically with the
/// operation itself, so it may inspect the space's current contents.
using PeatsPolicy = std::function<bool(const PeatsRequest&, const Peats&)>;

class Peats {
 public:
  /// Default policy admits everything.
  Peats();
  explicit Peats(PeatsPolicy policy);

  /// Insert. Returns false if the policy denies.
  bool out(ProcessId caller, Tuple tuple);

  /// Non-destructive read of the first matching tuple (insertion order).
  /// nullopt if denied or no match — PEATS deliberately does not tell a
  /// denied caller which of the two happened.
  std::optional<Tuple> rdp(ProcessId caller, const TupleTemplate& pattern) const;

  /// Non-destructive bulk read of ALL matching tuples, insertion order
  /// (the tuple-space literature's "copy-collect"). Empty if denied (as a
  /// read, governed by the same policy decision as rdp).
  std::vector<Tuple> rdp_all(ProcessId caller,
                             const TupleTemplate& pattern) const;

  /// Destructive read of the first matching tuple.
  std::optional<Tuple> inp(ProcessId caller, const TupleTemplate& pattern);

  /// Augmented conditional swap: if no tuple matches `pattern`, inserts
  /// `tuple` and returns nullopt; otherwise returns the first match and
  /// inserts nothing. Atomic, which is what lifts tuple spaces above
  /// read/write power.
  std::optional<Tuple> cas(ProcessId caller, const TupleTemplate& pattern,
                           Tuple tuple);

  std::size_t size() const { return tuples_.size(); }
  std::size_t count(const TupleTemplate& pattern) const;

  // ---- standard policies ---------------------------------------------------

  static PeatsPolicy allow_all();
  /// Only `owner` may out/cas; anyone may read; nobody may inp.
  /// (The tuple-space analogue of an SWMR append log.)
  static PeatsPolicy single_writer(ProcessId owner);
  /// Each process may out at most one tuple whose first field is its own
  /// process id (rendered as decimal). The state-dependent policy used to
  /// build one-shot objects like consensus proposals.
  static PeatsPolicy one_out_per_process();
  /// Conjunction of two policies.
  static PeatsPolicy both(PeatsPolicy a, PeatsPolicy b);

 private:
  PeatsPolicy policy_;
  std::vector<Tuple> tuples_;
};

}  // namespace unidir::shmem
