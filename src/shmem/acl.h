// Access control lists for shared objects.
//
// Following Malkhi et al. ("Objects shared by Byzantine processes"), each
// shared object carries an ACL specifying, per operation, which processes
// may execute it. ACLs are what make shared memory useful under Byzantine
// faults at all: without them a Byzantine process could overwrite
// everything. SWMR registers are the special case {write: {owner},
// read: everyone}.
#pragma once

#include <map>
#include <set>
#include <string>

#include "common/types.h"

namespace unidir::shmem {

class AccessControlList {
 public:
  /// Grants `op` to a single process.
  void allow(const std::string& op, ProcessId p);
  /// Grants `op` to every process (wildcard).
  void allow_all(const std::string& op);
  /// Revokes a previous single-process grant (wildcards are permanent:
  /// ACLs in this model are trusted static configuration).
  void revoke(const std::string& op, ProcessId p);

  bool allowed(const std::string& op, ProcessId p) const;

  /// Convenience: the SWMR ACL — `owner` may write, everyone may read.
  static AccessControlList swmr(ProcessId owner);

 private:
  std::map<std::string, std::set<ProcessId>> grants_;
  std::set<std::string> wildcard_;
};

}  // namespace unidir::shmem
