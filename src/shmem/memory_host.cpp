#include "shmem/memory_host.h"

namespace unidir::shmem {

MemoryHost::MemoryHost(sim::Simulator& simulator, sim::Rng rng,
                       MemoryOptions options)
    : simulator_(simulator), rng_(rng), options_(options) {
  UNIDIR_REQUIRE(options_.max_to_linearize >= 1);
  UNIDIR_REQUIRE(options_.max_to_respond >= 1);
}

}  // namespace unidir::shmem
