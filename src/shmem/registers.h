// Register-family shared objects: SWMR registers, SWMR append logs, and
// sticky (write-once) registers.
//
// These classes hold the linearization-time (synchronous) semantics; access
// them asynchronously through MemoryHost::invoke. All mutating operations
// return a status instead of throwing: a denied operation is a *normal*
// event in a Byzantine system (the hardware refuses; the caller learns
// nothing else), not a program error.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"
#include "shmem/acl.h"

namespace unidir::shmem {

enum class WriteStatus : std::uint8_t {
  Ok,
  AccessDenied,  // caller is not permitted by the ACL
  AlreadySet,    // sticky object was already written
};

/// Single-writer multi-reader atomic register (Aguilera et al.; Malkhi et
/// al.). The owner overwrites the value; anyone reads it.
template <typename T>
class SwmrRegister {
 public:
  SwmrRegister(ProcessId owner, T initial)
      : owner_(owner),
        acl_(AccessControlList::swmr(owner)),
        value_(std::move(initial)) {}

  ProcessId owner() const { return owner_; }

  WriteStatus write(ProcessId caller, T value) {
    if (!acl_.allowed("write", caller)) return WriteStatus::AccessDenied;
    value_ = std::move(value);
    ++version_;
    return WriteStatus::Ok;
  }

  /// Reads never fail: the SWMR ACL grants read to everyone.
  T read(ProcessId caller) const {
    (void)caller;
    return value_;
  }

  /// Number of successful writes so far (diagnostics only — a real register
  /// does not expose this; tests use it to verify ACL enforcement).
  std::uint64_t version() const { return version_; }

 private:
  ProcessId owner_;
  AccessControlList acl_;
  T value_;
  std::uint64_t version_ = 0;
};

/// Single-writer multi-reader append-only log: the object used by the
/// paper's unidirectional-round protocol ("p_i appends (r, m) in object
/// o_i; p_i reads objects o_1..o_n"). The owner appends; anyone reads the
/// whole history.
template <typename T>
class SwmrLog {
 public:
  explicit SwmrLog(ProcessId owner)
      : owner_(owner), acl_(AccessControlList::swmr(owner)) {}

  ProcessId owner() const { return owner_; }

  WriteStatus append(ProcessId caller, T value) {
    if (!acl_.allowed("write", caller)) return WriteStatus::AccessDenied;
    entries_.push_back(std::move(value));
    return WriteStatus::Ok;
  }

  /// Snapshot of the full log.
  std::vector<T> read(ProcessId caller) const {
    (void)caller;
    return entries_;
  }

  /// Snapshot of entries from index `from` (for incremental readers).
  std::vector<T> read_from(ProcessId caller, std::size_t from) const {
    (void)caller;
    if (from >= entries_.size()) return {};
    return std::vector<T>(entries_.begin() +
                              static_cast<std::ptrdiff_t>(from),
                          entries_.end());
  }

  std::size_t size() const { return entries_.size(); }

 private:
  ProcessId owner_;
  AccessControlList acl_;
  std::vector<T> entries_;
};

/// Sticky register (generalized sticky bit, Malkhi et al.): starts unset;
/// the first successful write fixes the value forever. The ACL decides who
/// may attempt the write — a sticky *bit* in the classic model lets anyone
/// write once; pass an ACL to restrict.
template <typename T>
class StickyRegister {
 public:
  /// Anyone may perform the one write (classic sticky bit semantics).
  StickyRegister() {
    acl_.allow_all("write");
    acl_.allow_all("read");
  }

  explicit StickyRegister(AccessControlList acl) : acl_(std::move(acl)) {}

  WriteStatus write(ProcessId caller, T value) {
    if (!acl_.allowed("write", caller)) return WriteStatus::AccessDenied;
    if (value_.has_value()) return WriteStatus::AlreadySet;
    value_ = std::move(value);
    return WriteStatus::Ok;
  }

  std::optional<T> read(ProcessId caller) const {
    if (!acl_.allowed("read", caller)) return std::nullopt;
    return value_;
  }

  bool set() const { return value_.has_value(); }

 private:
  AccessControlList acl_;
  std::optional<T> value_;
};

/// The classic sticky bit: a write-once boolean.
using StickyBit = StickyRegister<bool>;

}  // namespace unidir::shmem
