#include "shmem/acl.h"

namespace unidir::shmem {

void AccessControlList::allow(const std::string& op, ProcessId p) {
  grants_[op].insert(p);
}

void AccessControlList::allow_all(const std::string& op) {
  wildcard_.insert(op);
}

void AccessControlList::revoke(const std::string& op, ProcessId p) {
  auto it = grants_.find(op);
  if (it != grants_.end()) it->second.erase(p);
}

bool AccessControlList::allowed(const std::string& op, ProcessId p) const {
  if (wildcard_.contains(op)) return true;
  auto it = grants_.find(op);
  return it != grants_.end() && it->second.contains(p);
}

AccessControlList AccessControlList::swmr(ProcessId owner) {
  AccessControlList acl;
  acl.allow("write", owner);
  acl.allow_all("read");
  return acl;
}

}  // namespace unidir::shmem
