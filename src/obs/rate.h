// Shared wall-clock rate arithmetic.
//
// Several stats structs report "things per wall second" (simulator events,
// sweep scenarios); each used to carry its own copy of the guard-against-
// zero division. One helper means the guard can't drift between copies —
// and the zero case (nothing was measured, or the clock was too coarse to
// tick) uniformly reports 0 instead of inf/NaN.
#pragma once

#include <cstdint>

namespace unidir::obs {

/// `count` events over `wall_ns` nanoseconds, as events per second.
/// Returns 0.0 when no wall time was recorded.
inline double rate_per_sec(std::uint64_t count, std::uint64_t wall_ns) {
  return wall_ns == 0 ? 0.0
                      : static_cast<double>(count) * 1e9 /
                            static_cast<double>(wall_ns);
}

}  // namespace unidir::obs
