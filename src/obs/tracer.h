// Virtual-time tracer: spans and instant events in a bounded ring buffer,
// exported as Chrome trace-event JSON (load in chrome://tracing or
// Perfetto).
//
// Determinism rules (DESIGN.md §10):
//  * Timestamps are virtual ticks straight off the simulator clock; the
//    tracer never consults wall time, so a seed's trace is byte-identical
//    across runs, machines, and record/replay.
//  * Event names, categories and arg keys must be string literals with
//    static storage duration — TraceEvent stores the pointers, never
//    copies, so recording allocates nothing after enable().
//  * The exporter prints integers only (no doubles), keeping the JSON
//    byte-stable.
//
// Cost model: tracing is off by default at runtime (a single branch per
// call site), and the whole recording path can be compiled out with
// -DUNIDIR_OBS_TRACING=OFF (UNIDIR_OBS_NO_TRACING), leaving empty inline
// stubs the optimizer erases. The bench smoke gate runs against that
// build to keep the "zero-cost when disabled" claim honest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace unidir::obs {

/// One recorded event. POD of pointers and integers so the ring buffer is
/// a flat preallocated array; `name`/`cat`/`k0`/`k1` must point at string
/// literals.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  char ph = 'i';        // 'X' complete span, 'i' instant
  ProcessId tid = 0;    // owning process (kNoProcess → tid 0 lane)
  Time ts = 0;          // virtual start tick
  Time dur = 0;         // span length in ticks ('X' only)
  const char* k0 = nullptr;  // optional args, key literal + integer value
  std::uint64_t v0 = 0;
  const char* k1 = nullptr;
  std::uint64_t v1 = 0;
};

#if !defined(UNIDIR_OBS_NO_TRACING)

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  /// Turns recording on and preallocates the ring. All later record calls
  /// are allocation-free; once the ring is full the oldest events are
  /// overwritten (counted in dropped()).
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void complete(const char* name, const char* cat, ProcessId tid, Time ts,
                Time dur, const char* k0 = nullptr, std::uint64_t v0 = 0,
                const char* k1 = nullptr, std::uint64_t v1 = 0) {
    if (!enabled_) return;
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.ph = 'X';
    e.tid = tid;
    e.ts = ts;
    e.dur = dur;
    e.k0 = k0;
    e.v0 = v0;
    e.k1 = k1;
    e.v1 = v1;
    push(e);
  }

  void instant(const char* name, const char* cat, ProcessId tid, Time ts,
               const char* k0 = nullptr, std::uint64_t v0 = 0,
               const char* k1 = nullptr, std::uint64_t v1 = 0) {
    if (!enabled_) return;
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.ph = 'i';
    e.tid = tid;
    e.ts = ts;
    e.k0 = k0;
    e.v0 = v0;
    e.k1 = k1;
    e.v1 = v1;
    push(e);
  }

  /// Events currently held (≤ capacity).
  std::size_t recorded() const { return size_; }
  /// Events overwritten after the ring filled.
  std::uint64_t dropped() const { return dropped_; }

  /// Buffered events, oldest first.
  std::vector<TraceEvent> events() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}); byte-deterministic
  /// for a given event sequence.
  std::string to_chrome_json() const;

  void clear();

 private:
  void push(const TraceEvent& e) {
    if (ring_.empty()) return;
    if (size_ == ring_.size()) {
      ring_[head_] = e;
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
    } else {
      ring_[(head_ + size_) % ring_.size()] = e;
      ++size_;
    }
  }

  bool enabled_ = false;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

#else  // UNIDIR_OBS_NO_TRACING: compile-time no-op mirror

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 0;

  void enable(std::size_t = 0) {}
  void disable() {}
  bool enabled() const { return false; }

  void complete(const char*, const char*, ProcessId, Time, Time,
                const char* = nullptr, std::uint64_t = 0,
                const char* = nullptr, std::uint64_t = 0) {}
  void instant(const char*, const char*, ProcessId, Time,
               const char* = nullptr, std::uint64_t = 0,
               const char* = nullptr, std::uint64_t = 0) {}

  std::size_t recorded() const { return 0; }
  std::uint64_t dropped() const { return 0; }
  std::vector<TraceEvent> events() const { return {}; }
  std::string to_chrome_json() const;
  void clear() {}
};

#endif  // UNIDIR_OBS_NO_TRACING

}  // namespace unidir::obs
