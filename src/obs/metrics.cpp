#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace unidir::obs {

void HistogramData::record(std::uint64_t value) {
  if (counts.size() != bounds.size() + 1) counts.assign(bounds.size() + 1, 0);
  std::size_t bucket = bounds.size();  // overflow unless a bound admits it
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (value <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++counts[bucket];
  ++count;
  sum += value;
  if (value > max) max = value;
}

std::uint64_t HistogramData::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    // Clamp to the observed maximum: a bucket's upper bound can overshoot
    // every sample it holds, and "p50 > max" reads as nonsense.
    if (seen >= rank)
      return i < bounds.size() ? std::min(bounds[i], max) : max;
  }
  return max;
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) return;
  if (count == 0 && counts.empty()) {
    *this = other;
    return;
  }
  assert(bounds == other.bounds);
  if (counts.size() != bounds.size() + 1) counts.assign(bounds.size() + 1, 0);
  for (std::size_t i = 0; i < counts.size() && i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
}

std::vector<std::uint64_t> Histogram::default_tick_bounds() {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 1; b <= 8192; b <<= 1) bounds.push_back(b);
  return bounds;
}

Histogram::Histogram(std::vector<std::uint64_t> bounds) {
  data_.bounds = std::move(bounds);
  data_.counts.assign(data_.bounds.size() + 1, 0);
}

const HistogramData* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  auto it = histograms.find(std::string(name));
  return it == histograms.end() ? nullptr : &it->second;
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? fallback : it->second;
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << "gauge " << name << " " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    os << "histogram " << name << " count=" << h.count << " sum=" << h.sum
       << " p50=" << h.quantile(0.50) << " p95=" << h.quantile(0.95)
       << " p99=" << h.quantile(0.99) << " max=" << h.max << "\n";
  }
  return os.str();
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set_counter(std::string_view name, std::uint64_t value) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::set_gauge(std::string_view name, std::int64_t value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram()).first;
  }
  return it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, value] : counters_) snap.counters[name] = value;
  for (const auto& [name, value] : gauges_) snap.gauges[name] = value;
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h.data();
  return snap;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::merge_from(MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) add(name, value);
  for (const auto& [name, value] : other.gauges_) set_gauge(name, value);
  for (const auto& [name, h] : other.histograms_)
    histogram(name).merge(h.data());
  other.clear();
}

}  // namespace unidir::obs
