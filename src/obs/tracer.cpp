#include "obs/tracer.h"

namespace unidir::obs {

#if !defined(UNIDIR_OBS_NO_TRACING)

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  out.append(p, buf + sizeof(buf));
}

// Arg keys are trusted literals (identifiers), but event names may contain
// spaces; neither may contain quotes/backslashes/control bytes, so plain
// append is safe. Assert-free: literals are reviewed at the call site.
void append_event(std::string& out, const TraceEvent& e) {
  out += "{\"name\":\"";
  out += e.name;
  out += "\",\"cat\":\"";
  out += e.cat;
  out += "\",\"ph\":\"";
  out += e.ph;
  out += "\",\"pid\":0,\"tid\":";
  append_u64(out, e.tid);
  out += ",\"ts\":";
  append_u64(out, e.ts);
  if (e.ph == 'X') {
    out += ",\"dur\":";
    append_u64(out, e.dur);
  } else {
    out += ",\"s\":\"t\"";  // instant scoped to its thread lane
  }
  if (e.k0 != nullptr || e.k1 != nullptr) {
    out += ",\"args\":{";
    bool first = true;
    if (e.k0 != nullptr) {
      out += "\"";
      out += e.k0;
      out += "\":";
      append_u64(out, e.v0);
      first = false;
    }
    if (e.k1 != nullptr) {
      if (!first) out += ",";
      out += "\"";
      out += e.k1;
      out += "\":";
      append_u64(out, e.v1);
    }
    out += "}";
  }
  out += "}";
}

}  // namespace

void Tracer::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  if (ring_.size() != capacity) {
    ring_.assign(capacity, TraceEvent{});
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }
  enabled_ = true;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string Tracer::to_chrome_json() const {
  std::string out;
  out.reserve(64 + size_ * 96);
  out += "{\"traceEvents\":[";
  for (std::size_t i = 0; i < size_; ++i) {
    if (i != 0) out += ",";
    out += "\n";
    append_event(out, ring_[(head_ + i) % ring_.size()]);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void Tracer::clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

#else

std::string Tracer::to_chrome_json() const {
  return "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n";
}

#endif  // UNIDIR_OBS_NO_TRACING

}  // namespace unidir::obs
