// Unified metrics registry: named counters, gauges and fixed-bucket
// virtual-tick histograms, owned by the World and shared by every layer.
//
// Before this existed, telemetry was scattered over four ad-hoc structs
// (SimulatorStats, NetworkStats, ChannelStats, VerifyStats) plus the
// client's raw latency vector; experiments that wanted "commit latency
// p99 under adversary X" had to re-derive it by hand. The registry gives
// every layer one place to publish and every experiment one place to read.
//
// Determinism rules (DESIGN.md §10):
//  * Histogram samples are virtual ticks (or pure counts) — never wall
//    time. Wall-clock figures (events/sec) stay in their stats structs and
//    are NOT published here, so two runs of one seed produce identical
//    snapshots.
//  * All maps are ordered by name; snapshot() and to_text() iterate them
//    in that order, so rendered snapshots are byte-stable.
//
// Quantiles come from fixed bucket boundaries: quantile(q) returns the
// inclusive upper bound of the bucket holding the q-th sample, clamped to
// the observed maximum (which is exact). Coarse, but deterministic, mergeable
// and allocation-light — the uBFT style of percentile accounting adapted
// to virtual time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace unidir::obs {

/// The value state of one histogram: cumulative-free bucket counts plus
/// exact count/sum/max. Plain data so snapshots can copy, compare and
/// merge it.
struct HistogramData {
  /// Inclusive upper bounds, ascending. Samples above the last bound land
  /// in an implicit overflow bucket, so counts.size() == bounds.size() + 1.
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  bool operator==(const HistogramData&) const = default;

  void record(std::uint64_t value);

  /// Upper bound of the bucket containing the ceil(q * count)-th sample
  /// (q in [0, 1]), clamped to `max`; `max` for the overflow bucket, 0
  /// when empty.
  std::uint64_t quantile(double q) const;

  /// Folds `other` in; bucket bounds must match.
  void merge(const HistogramData& other);
};

class Histogram {
 public:
  /// Default bounds suit tick-scale latencies: powers of two, 1..8192.
  static std::vector<std::uint64_t> default_tick_bounds();

  explicit Histogram(std::vector<std::uint64_t> bounds = default_tick_bounds());

  void record(std::uint64_t value) { data_.record(value); }
  void merge(const HistogramData& other) { data_.merge(other); }
  const HistogramData& data() const { return data_; }

 private:
  HistogramData data_;
};

/// Copyable, comparable view of a registry at one instant. RunOutcome
/// carries one per scenario; golden tests compare them across runs.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  bool operator==(const MetricsSnapshot&) const = default;

  const HistogramData* find_histogram(std::string_view name) const;
  std::uint64_t counter_or(std::string_view name, std::uint64_t fallback) const;

  /// Deterministic line-oriented rendering (sorted by name), suitable for
  /// dumping next to a repro trace.
  std::string to_text() const;
};

class MetricsRegistry {
 public:
  /// Bumps (or creates) a counter.
  void add(std::string_view name, std::uint64_t delta = 1);
  /// Publishes an externally maintained total (idempotent, unlike add).
  void set_counter(std::string_view name, std::uint64_t value);
  void set_gauge(std::string_view name, std::int64_t value);

  /// The named histogram, created with default tick bounds on first use.
  /// References stay valid for the registry's lifetime.
  Histogram& histogram(std::string_view name);

  std::uint64_t counter_value(std::string_view name) const;

  MetricsSnapshot snapshot() const;
  void clear();

  /// Folds `other` into this registry and clears it: counters add,
  /// histograms merge (bounds must match — every histogram here uses the
  /// default tick bounds), gauges overwrite. The fold half of the World's
  /// per-execution-shard registries; draining keeps repeated folds from
  /// double-counting.
  void merge_from(MetricsRegistry& other);

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, std::int64_t, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace unidir::obs
