#include "explore/shrink.h"

#include <algorithm>

namespace unidir::explore {

namespace {

struct Shrinker {
  const InvariantRegistry& registry;
  const std::string& invariant;
  std::size_t max_runs;
  std::size_t runs = 0;

  /// True iff the candidate still fails with the same invariant. Returns
  /// false without running once the budget is spent, which freezes the
  /// current best result.
  bool fails(const ScenarioSpec& spec, const ScheduleTrace& trace) {
    if (runs >= max_runs) return false;
    ++runs;
    const RunOutcome out =
        run_scenario(spec, registry, RunMode::Replay, &trace);
    return out.violation && out.violation->invariant == invariant;
  }
};

/// ddmin-style chunk removal over `items`: tries dropping windows of
/// halving size; `accepts` judges each candidate list. Returns accepted
/// removals.
template <typename T, typename Accepts>
std::size_t minimize_list(std::vector<T>& items, Accepts accepts) {
  std::size_t reductions = 0;
  if (items.empty()) return reductions;
  for (std::size_t chunk = items.size(); chunk >= 1; chunk /= 2) {
    for (std::size_t start = 0; start + chunk <= items.size();) {
      std::vector<T> candidate(items.begin(),
                               items.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       items.begin() + static_cast<std::ptrdiff_t>(start + chunk),
                       items.end());
      if (accepts(candidate)) {
        items = std::move(candidate);
        ++reductions;
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return reductions;
}

bool collapsible(const ScheduleDecision& d) {
  if (d.kind == DecisionKind::Copies) return d.copies > 1;
  return !d.held && d.delay > 1;
}

void collapse(ScheduleDecision& d) {
  if (d.kind == DecisionKind::Copies)
    d.copies = 1;
  else
    d.delay = 1;
}

}  // namespace

ShrinkOutcome shrink_failure(const ScenarioSpec& spec,
                             const ScheduleTrace& trace,
                             const InvariantRegistry& registry,
                             const std::string& invariant,
                             const ShrinkLimits& limits) {
  ShrinkOutcome out{spec, trace};
  Shrinker sh{registry, invariant, limits.max_runs};

  // 1. Un-crash replicas, one event at a time (few enough that chunking
  //    buys nothing).
  for (std::size_t i = out.spec.crashes.size(); i-- > 0;) {
    ScenarioSpec candidate = out.spec;
    candidate.crashes.erase(candidate.crashes.begin() +
                            static_cast<std::ptrdiff_t>(i));
    if (sh.fails(candidate, out.trace)) {
      out.spec = std::move(candidate);
      ++out.reductions;
    }
  }

  // 1b. Drop crash+restart pairs, one event at a time. Each RecoveryEvent
  //     is removed whole so every surviving restart stays matched to its
  //     crash.
  for (std::size_t i = out.spec.recoveries.size(); i-- > 0;) {
    ScenarioSpec candidate = out.spec;
    candidate.recoveries.erase(candidate.recoveries.begin() +
                               static_cast<std::ptrdiff_t>(i));
    if (sh.fails(candidate, out.trace)) {
      out.spec = std::move(candidate);
      ++out.reductions;
    }
  }

  // 2. Coarse dimensions before fine-grained request trimming: reset the
  //    batching knobs toward their (unbatched) defaults — all at once
  //    first, then per knob with halving steps — and try removing the
  //    workload fleet wholesale while the legacy requests are still intact
  //    enough to carry the failure alone. A failure that survives
  //    batch_size = pipeline = 1 is not a batching bug.
  {
    auto accept = [&](ScenarioSpec candidate) {
      if (!sh.fails(candidate, out.trace)) return false;
      out.spec = std::move(candidate);
      ++out.reductions;
      return true;
    };
    if (out.spec.batch_size != 1 || out.spec.replica_pipeline != 1) {
      ScenarioSpec all = out.spec;
      all.batch_size = 1;
      all.replica_pipeline = 1;
      all.batch_timeout_ticks = 4;
      accept(std::move(all));
    }
    while (out.spec.batch_size > 1) {
      ScenarioSpec c = out.spec;
      c.batch_size = std::max<std::uint64_t>(1, c.batch_size / 2);
      if (!accept(std::move(c))) break;
    }
    while (out.spec.replica_pipeline > 1) {
      ScenarioSpec c = out.spec;
      c.replica_pipeline =
          std::max<std::uint64_t>(1, c.replica_pipeline / 2);
      if (!accept(std::move(c))) break;
    }
    if (out.spec.batch_timeout_ticks != 4) {
      ScenarioSpec c = out.spec;
      c.batch_timeout_ticks = 4;
      accept(std::move(c));
    }

    // Workload fleet: drop it wholesale if the legacy requests alone still
    // fail, else trim clients and per-client request counts, then strip
    // the open-loop and skew refinements.
    if (out.spec.workload.enabled()) {
      if (!out.spec.requests.empty()) {
        ScenarioSpec c = out.spec;
        c.workload = sim::WorkloadSpec{};
        accept(std::move(c));
      }
      while (out.spec.workload.clients > 1) {
        ScenarioSpec c = out.spec;
        c.workload.clients = std::max<std::uint64_t>(
            1, c.workload.clients / 2);
        if (!accept(std::move(c))) break;
      }
      while (out.spec.workload.requests_per_client > 1) {
        ScenarioSpec c = out.spec;
        c.workload.requests_per_client = std::max<std::uint64_t>(
            1, c.workload.requests_per_client / 2);
        if (!accept(std::move(c))) break;
      }
      if (out.spec.workload.open_loop) {
        ScenarioSpec c = out.spec;
        c.workload.open_loop = false;
        accept(std::move(c));
      }
      if (out.spec.workload.hot_key_percent != 0) {
        ScenarioSpec c = out.spec;
        c.workload.hot_key_percent = 0;
        accept(std::move(c));
      }
    }
  }

  // 2b. Drop client requests. run_scenario needs some load, so the empty
  //     candidate is only offered while a workload fleet remains.
  out.reductions += minimize_list(
      out.spec.requests, [&](const std::vector<Bytes>& candidate) {
        if (candidate.empty() && !out.spec.workload.enabled()) return false;
        ScenarioSpec s = out.spec;
        s.requests = candidate;
        return sh.fails(s, out.trace);
      });

  // 3. Collapse delays and copy counts toward 1 — all at once if possible,
  //    then halving windows of the remaining targets.
  std::vector<std::size_t> targets;
  for (std::size_t i = 0; i < out.trace.decisions.size(); ++i)
    if (collapsible(out.trace.decisions[i])) targets.push_back(i);
  if (!targets.empty()) {
    for (std::size_t chunk = targets.size(); chunk >= 1; chunk /= 2) {
      for (std::size_t start = 0; start + chunk <= targets.size();) {
        ScheduleTrace candidate = out.trace;
        for (std::size_t k = start; k < start + chunk; ++k)
          collapse(candidate.decisions[targets[k]]);
        if (sh.fails(out.spec, candidate)) {
          out.trace = std::move(candidate);
          targets.erase(targets.begin() + static_cast<std::ptrdiff_t>(start),
                        targets.begin() +
                            static_cast<std::ptrdiff_t>(start + chunk));
          ++out.reductions;
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }

  // 4. Garbage-collect decisions the shrunken scenario never consults. The
  //    consumed trace replays the exact same schedule, so this can only
  //    fail if the budget ran out — in which case keep the uncollected one.
  {
    const RunOutcome replayed =
        run_scenario(out.spec, registry, RunMode::Replay, &out.trace);
    ++sh.runs;
    if (replayed.violation && replayed.violation->invariant == invariant &&
        replayed.trace.decisions.size() < out.trace.decisions.size() &&
        sh.fails(out.spec, replayed.trace)) {
      out.trace = replayed.trace;
      ++out.reductions;
    }
  }

  out.runs = sh.runs;
  return out;
}

}  // namespace unidir::explore
