// Explorer: seeded sweeps over {protocol × adversary × crash plan} with
// record → check → shrink → replay on every violation.
//
// Each run records its schedule; when an invariant fails, the shrinker
// minimizes the (spec, trace) pair and the explorer replays the shrunken
// artifact twice to certify determinism. A Finding carries everything
// needed to reproduce the violation in isolation — including a
// copy-pasteable replay snippet with the hex-encoded artifacts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "explore/invariants.h"
#include "explore/scenario.h"
#include "explore/shrink.h"

namespace unidir::explore {

struct SweepPlan {
  std::vector<ProtocolKind> protocols{ProtocolKind::MinBft,
                                      ProtocolKind::Pbft};
  std::vector<AdversaryKind> adversaries{AdversaryKind::RandomDelay};
  std::uint64_t seeds = 10;       // seeds per (protocol, adversary) pair
  std::uint64_t seed_base = 1;
  bool shrink = true;
  ShrinkLimits shrink_limits{};
  /// Worker threads for the record phase (ParallelRunner): 1 = serial,
  /// 0 = one per hardware thread. Findings are identical either way —
  /// recording is per-scenario and outcomes merge in input order; only
  /// shrink/replay certification runs serially.
  std::size_t threads = 1;
};

struct Finding {
  ScenarioSpec spec;  // the failing scenario, as materialized
  InvariantViolation violation;
  ScenarioSpec shrunk_spec;
  ScheduleTrace shrunk_trace;
  std::size_t recorded_decisions = 0;
  std::size_t shrink_runs = 0;
  /// Two replays of the shrunken artifact produced identical executions
  /// and the same violation.
  bool deterministic = false;
  /// Chrome-trace JSON of one traced replay of the shrunken artifact —
  /// load in chrome://tracing / Perfetto to see the failing schedule on a
  /// virtual timeline.
  std::string trace_json;
  /// Metrics snapshot of that same replay, rendered via to_text().
  std::string metrics_text;

  /// Human-facing reproduction instructions embedding the hex artifacts.
  std::string replay_snippet() const;
};

struct ExplorationReport {
  std::uint64_t runs = 0;
  std::vector<Finding> findings;

  std::string summary() const;
};

class Explorer {
 public:
  Explorer(SweepPlan plan, InvariantRegistry registry);

  ExplorationReport run() const;

 private:
  SweepPlan plan_;
  InvariantRegistry registry_;
};

}  // namespace unidir::explore
