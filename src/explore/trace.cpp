#include "explore/trace.h"

#include <algorithm>
#include <sstream>

namespace unidir::explore {

std::string decision_kind_name(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::Send:
      return "send";
    case DecisionKind::Copies:
      return "copies";
    case DecisionKind::Release:
      return "release";
  }
  return "?";
}

MessageKey MessageKey::of(const sim::Envelope& env) {
  MessageKey k;
  k.from = env.from;
  k.to = env.to;
  k.channel = env.channel;
  // Cached per buffer: duplicates, held re-offers and replay consults of
  // the same payload hash it once.
  k.payload_hash = env.payload.fnv();
  return k;
}

void MessageKey::encode(serde::Writer& w) const {
  w.uvarint(from);
  w.uvarint(to);
  w.uvarint(channel);
  w.uvarint(payload_hash);
}

MessageKey MessageKey::decode(serde::Reader& r) {
  MessageKey k;
  k.from = serde::read<ProcessId>(r);
  k.to = serde::read<ProcessId>(r);
  k.channel = serde::read<sim::Channel>(r);
  k.payload_hash = r.uvarint();
  return k;
}

std::string ScheduleDecision::describe() const {
  std::ostringstream os;
  os << decision_kind_name(kind) << " " << key.from << "->" << key.to
     << " ch=" << key.channel;
  if (kind == DecisionKind::Copies)
    os << " copies=" << copies;
  else if (held)
    os << " HELD";
  else
    os << " delay=" << delay;
  return os.str();
}

void ScheduleDecision::encode(serde::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  key.encode(w);
  w.boolean(held);
  w.uvarint(delay);
  w.uvarint(copies);
}

ScheduleDecision ScheduleDecision::decode(serde::Reader& r) {
  ScheduleDecision d;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(DecisionKind::Release))
    throw serde::DecodeError("bad DecisionKind");
  d.kind = static_cast<DecisionKind>(kind);
  d.key = MessageKey::decode(r);
  d.held = r.boolean();
  d.delay = r.uvarint();
  d.copies = r.uvarint();
  return d;
}

std::string ScheduleTrace::summary() const {
  std::size_t sends = 0, copies = 0, releases = 0, holds = 0;
  Time max_delay = 0;
  for (const ScheduleDecision& d : decisions) {
    switch (d.kind) {
      case DecisionKind::Send:
        ++sends;
        break;
      case DecisionKind::Copies:
        ++copies;
        break;
      case DecisionKind::Release:
        ++releases;
        break;
    }
    if (d.kind != DecisionKind::Copies) {
      if (d.held)
        ++holds;
      else
        max_delay = std::max(max_delay, d.delay);
    }
  }
  std::ostringstream os;
  os << decisions.size() << " decisions (" << sends << " sends, " << copies
     << " copy choices, " << releases << " releases, " << holds
     << " holds, max delay " << max_delay << ")";
  return os.str();
}

void ScheduleTrace::encode(serde::Writer& w) const {
  serde::write(w, decisions);
}

ScheduleTrace ScheduleTrace::decode(serde::Reader& r) {
  ScheduleTrace t;
  t.decisions = serde::read<std::vector<ScheduleDecision>>(r);
  return t;
}

std::string ScheduleTrace::to_hex() const {
  return unidir::to_hex(serde::encode(*this));
}

ScheduleTrace ScheduleTrace::from_hex(std::string_view hex) {
  return serde::decode<ScheduleTrace>(unidir::from_hex(hex));
}

}  // namespace unidir::explore
