// Serializable schedule traces.
//
// A ScheduleTrace captures every scheduling decision an adversary made in
// one execution: the delay (or hold) chosen for each message copy, the
// number of copies injected, and the fate of each re-offered held message.
// Together with the ScenarioSpec that produced the execution (scenario.h),
// a trace makes a failing run a standalone, committable artifact: replay it
// with ReplayAdversary (record_replay.h) and the execution — and therefore
// the invariant violation — reproduces deterministically.
//
// Decisions are keyed by message *content* (from, to, channel, payload
// hash), not by envelope id. Envelope ids are assigned in global send order
// and shift when the shrinker removes client requests or crash events; the
// content key lets a shrunken scenario keep replaying the decisions for
// the messages that survive.
#pragma once

#include <string>
#include <vector>

#include "common/serde.h"
#include "sim/network.h"

namespace unidir::explore {

/// FNV-1a 64-bit hash, used to fingerprint message payloads in trace keys.
/// (Now lives in common/bytes.h; re-exported here for existing callers.)
using unidir::fnv1a64;

/// Which adversary entry point produced a decision.
enum class DecisionKind : std::uint8_t { Send = 0, Copies = 1, Release = 2 };

std::string decision_kind_name(DecisionKind kind);

/// Content identity of a message. Two sends of identical bytes on the same
/// link share a key; their decisions are replayed in recording order.
struct MessageKey {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  sim::Channel channel = 0;
  std::uint64_t payload_hash = 0;

  static MessageKey of(const sim::Envelope& env);

  auto operator<=>(const MessageKey&) const = default;

  void encode(serde::Writer& w) const;
  static MessageKey decode(serde::Reader& r);
};

/// One adversary decision. `held`/`delay` apply to Send and Release
/// decisions; `copies` applies to Copies decisions.
struct ScheduleDecision {
  DecisionKind kind = DecisionKind::Send;
  MessageKey key;
  bool held = false;
  Time delay = 0;
  std::uint64_t copies = 1;

  bool operator==(const ScheduleDecision&) const = default;

  std::string describe() const;

  void encode(serde::Writer& w) const;
  static ScheduleDecision decode(serde::Reader& r);
};

struct ScheduleTrace {
  std::vector<ScheduleDecision> decisions;

  bool operator==(const ScheduleTrace&) const = default;

  /// One-line shape summary for reports: decision counts per kind, holds,
  /// and the maximum delay present.
  std::string summary() const;

  void encode(serde::Writer& w) const;
  static ScheduleTrace decode(serde::Reader& r);

  /// Hex round-trip, the form replay snippets embed.
  std::string to_hex() const;
  static ScheduleTrace from_hex(std::string_view hex);
};

}  // namespace unidir::explore
