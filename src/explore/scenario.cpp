#include "explore/scenario.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "agreement/minbft.h"
#include "agreement/pbft.h"
#include "agreement/state_machines.h"
#include "explore/record_replay.h"
#include "sim/adversaries.h"

namespace unidir::explore {

std::string protocol_name(ProtocolKind p) {
  switch (p) {
    case ProtocolKind::MinBft:
      return "minbft";
    case ProtocolKind::Pbft:
      return "pbft";
  }
  return "?";
}

std::string adversary_name(AdversaryKind a) {
  switch (a) {
    case AdversaryKind::Immediate:
      return "immediate";
    case AdversaryKind::RandomDelay:
      return "random-delay";
    case AdversaryKind::Duplicating:
      return "duplicating";
    case AdversaryKind::Gst:
      return "gst";
    case AdversaryKind::Mutating:
      return "mutating";
  }
  return "?";
}

void CrashEvent::encode(serde::Writer& w) const {
  w.uvarint(victim);
  w.uvarint(when);
}

CrashEvent CrashEvent::decode(serde::Reader& r) {
  CrashEvent e;
  e.victim = serde::read<ProcessId>(r);
  e.when = r.uvarint();
  return e;
}

void RecoveryEvent::encode(serde::Writer& w) const {
  w.uvarint(victim);
  w.uvarint(crash_at);
  w.uvarint(restart_at);
}

RecoveryEvent RecoveryEvent::decode(serde::Reader& r) {
  RecoveryEvent e;
  e.victim = serde::read<ProcessId>(r);
  e.crash_at = r.uvarint();
  e.restart_at = r.uvarint();
  if (e.restart_at <= e.crash_at)
    throw serde::DecodeError("RecoveryEvent restart precedes crash");
  return e;
}

ScenarioSpec ScenarioSpec::materialize(ProtocolKind protocol,
                                       AdversaryKind adversary,
                                       std::uint64_t seed) {
  ScenarioSpec s;
  s.protocol = protocol;
  s.adversary = adversary;
  s.seed = seed;

  sim::Rng pick(seed ^ (protocol == ProtocolKind::Pbft ? 0xABCDEFULL : 0ULL));
  s.f = pick.range(1, 2);
  s.n = (protocol == ProtocolKind::MinBft ? 2 * s.f + 1 : 3 * s.f + 1);

  sim::Rng plan(seed * 0x9E3779B97F4A7C15ULL + 1);
  switch (adversary) {
    case AdversaryKind::Immediate:
      s.max_delay = 1;
      break;
    case AdversaryKind::RandomDelay:
      s.max_delay = plan.range(2, 20);
      break;
    case AdversaryKind::Duplicating:
      s.max_delay = plan.range(2, 10);
      s.max_copies = plan.range(2, 3);
      break;
    case AdversaryKind::Gst:
      s.gst = plan.range(50, 250);
      s.gst_delta = plan.range(1, 5);
      s.gst_pre_extra = plan.range(10, 150);
      break;
    case AdversaryKind::Mutating:
      s.max_delay = plan.range(2, 10);
      s.mutate_rate = plan.range(10, 40);
      break;
  }
  s.pipeline_depth = plan.range(1, 4);
  s.resend_timeout = 200;
  s.view_change_timeout = 150;

  const std::uint64_t requests = plan.range(4, 10);
  for (std::uint64_t k = 0; k < requests; ++k)
    s.requests.push_back(agreement::KvStateMachine::put_op(
        "key" + std::to_string(k % 3), "v" + std::to_string(k)));

  const std::uint64_t crashes = plan.range(0, s.f);
  std::vector<ProcessId> victims;
  for (std::uint64_t i = 0; i < s.n; ++i)
    victims.push_back(static_cast<ProcessId>(i));
  plan.shuffle(victims);
  for (std::uint64_t c = 0; c < crashes; ++c)
    s.crashes.push_back({victims[c], plan.range(1, 400)});
  return s;
}

ScenarioSpec ScenarioSpec::materialize_recovery(ProtocolKind protocol,
                                                AdversaryKind adversary,
                                                std::uint64_t seed) {
  // Same base draw as materialize() — the recovery schedule comes from a
  // separate stream so existing sweeps keep their per-seed scenarios.
  ScenarioSpec s = materialize(protocol, adversary, seed);
  s.crashes.clear();  // recovery events carry their own crash schedule
  sim::Rng rec(seed * 0xD1B54A32D192ED03ULL + 2);
  const std::uint64_t count = rec.range(1, s.f);
  std::vector<ProcessId> victims;
  for (std::uint64_t i = 0; i < s.n; ++i)
    victims.push_back(static_cast<ProcessId>(i));
  rec.shuffle(victims);
  for (std::uint64_t c = 0; c < count; ++c) {
    const Time crash_at = rec.range(1, 300);
    // Long enough to lose in-flight traffic, short enough that the run
    // still quiesces with everything executed.
    const Time restart_at = crash_at + rec.range(30, 500);
    s.recoveries.push_back({victims[c], crash_at, restart_at});
  }
  return s;
}

namespace {

/// The batched-mode knob draw shared by materialize_batched and
/// materialize_batched_recovery. Its own stream, so the base scenarios
/// (and every existing sweep seed) stay untouched.
void apply_batched_draw(ScenarioSpec& s, std::uint64_t seed) {
  sim::Rng b(seed * 0xA24BAED4963EE407ULL + 3);
  const std::uint64_t sizes[] = {2, 4, 8, 16};
  s.batch_size = sizes[b.below(4)];
  s.batch_timeout_ticks = b.range(0, 6);
  s.replica_pipeline = b.range(2, 6);
  s.workload.clients = b.range(2, 6);
  s.workload.requests_per_client = b.range(3, 8);
  s.workload.open_loop = b.chance(1, 2);
  s.workload.mean_interarrival = b.range(3, 15);
  s.workload.max_outstanding = b.range(1, 3);
  s.workload.key_space = b.range(4, 12);
  s.workload.hot_key_percent = b.chance(1, 2) ? b.range(50, 90) : 0;
  s.workload.hot_keys = b.range(1, 2);
  s.workload.seed = seed;
}

}  // namespace

ScenarioSpec ScenarioSpec::materialize_batched(ProtocolKind protocol,
                                               AdversaryKind adversary,
                                               std::uint64_t seed) {
  ScenarioSpec s = materialize(protocol, adversary, seed);
  apply_batched_draw(s, seed);
  return s;
}

ScenarioSpec ScenarioSpec::materialize_batched_recovery(
    ProtocolKind protocol, AdversaryKind adversary, std::uint64_t seed) {
  ScenarioSpec s = materialize_recovery(protocol, adversary, seed);
  apply_batched_draw(s, seed);
  return s;
}

std::string ScenarioSpec::describe() const {
  std::ostringstream os;
  os << protocol_name(protocol) << " n=" << n << " f=" << f << " seed=" << seed
     << " adversary=" << adversary_name(adversary);
  switch (adversary) {
    case AdversaryKind::Immediate:
      break;
    case AdversaryKind::RandomDelay:
      os << "(max=" << max_delay << ")";
      break;
    case AdversaryKind::Duplicating:
      os << "(max=" << max_delay << ", copies=" << max_copies << ")";
      break;
    case AdversaryKind::Gst:
      os << "(gst=" << gst << ", delta=" << gst_delta << ")";
      break;
    case AdversaryKind::Mutating:
      os << "(max=" << max_delay << ", rate=" << mutate_rate << "%)";
      break;
  }
  os << " requests=" << requests.size() << " pipeline=" << pipeline_depth
     << " crashes=[";
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    if (i) os << ", ";
    os << crashes[i].victim << "@t" << crashes[i].when;
  }
  os << "] recoveries=[";
  for (std::size_t i = 0; i < recoveries.size(); ++i) {
    if (i) os << ", ";
    os << recoveries[i].victim << "@t" << recoveries[i].crash_at << "-t"
       << recoveries[i].restart_at;
  }
  os << "]";
  if (volatile_trusted_state) os << " volatile-trusted";
  if (client_max_attempts) os << " max-attempts=" << client_max_attempts;
  if (checkpoint_interval) os << " ckpt=" << checkpoint_interval;
  if (trace) os << " trace";
  if (batch_size > 1 || replica_pipeline > 1)
    os << " batch=" << batch_size << "/t" << batch_timeout_ticks << "/p"
       << replica_pipeline;
  if (workload.enabled()) os << " " << workload.describe();
  if (verify_threads != 1) os << " vthreads=" << verify_threads;
  return os.str();
}

void ScenarioSpec::encode(serde::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(protocol));
  w.u8(static_cast<std::uint8_t>(adversary));
  w.uvarint(seed);
  w.uvarint(n);
  w.uvarint(f);
  w.uvarint(max_delay);
  w.uvarint(max_copies);
  w.uvarint(gst);
  w.uvarint(gst_delta);
  w.uvarint(gst_pre_extra);
  w.uvarint(pipeline_depth);
  w.uvarint(resend_timeout);
  w.uvarint(view_change_timeout);
  w.uvarint(commit_quorum);
  serde::write(w, requests);
  serde::write(w, crashes);
  w.uvarint(max_events);
  w.uvarint(mutate_rate);
  serde::write(w, recoveries);
  w.u8(volatile_trusted_state ? 1 : 0);
  w.uvarint(client_max_attempts);
  w.uvarint(checkpoint_interval);
  w.u8(trace ? 1 : 0);
  w.uvarint(batch_size);
  w.uvarint(batch_timeout_ticks);
  w.uvarint(replica_pipeline);
  workload.encode(w);
  w.uvarint(verify_threads);
}

ScenarioSpec ScenarioSpec::decode(serde::Reader& r) {
  ScenarioSpec s;
  const std::uint8_t p = r.u8();
  if (p > static_cast<std::uint8_t>(ProtocolKind::Pbft))
    throw serde::DecodeError("bad ProtocolKind");
  s.protocol = static_cast<ProtocolKind>(p);
  const std::uint8_t a = r.u8();
  if (a > static_cast<std::uint8_t>(AdversaryKind::Mutating))
    throw serde::DecodeError("bad AdversaryKind");
  s.adversary = static_cast<AdversaryKind>(a);
  s.seed = r.uvarint();
  s.n = r.uvarint();
  s.f = r.uvarint();
  s.max_delay = r.uvarint();
  s.max_copies = r.uvarint();
  s.gst = r.uvarint();
  s.gst_delta = r.uvarint();
  s.gst_pre_extra = r.uvarint();
  s.pipeline_depth = r.uvarint();
  s.resend_timeout = r.uvarint();
  s.view_change_timeout = r.uvarint();
  s.commit_quorum = r.uvarint();
  s.requests = serde::read<std::vector<Bytes>>(r);
  s.crashes = serde::read<std::vector<CrashEvent>>(r);
  s.max_events = r.uvarint();
  s.mutate_rate = r.uvarint();
  s.recoveries = serde::read<std::vector<RecoveryEvent>>(r);
  s.volatile_trusted_state = r.u8() != 0;
  s.client_max_attempts = r.uvarint();
  s.checkpoint_interval = r.uvarint();
  s.trace = r.u8() != 0;
  s.batch_size = r.uvarint();
  if (s.batch_size == 0) throw serde::DecodeError("batch_size must be >= 1");
  s.batch_timeout_ticks = r.uvarint();
  s.replica_pipeline = r.uvarint();
  if (s.replica_pipeline == 0)
    throw serde::DecodeError("replica_pipeline must be >= 1");
  s.workload = sim::WorkloadSpec::decode(r);
  s.verify_threads = r.uvarint();
  if (s.verify_threads > 256)
    throw serde::DecodeError("verify_threads exceeds 256");
  return s;
}

std::string ScenarioSpec::to_hex() const {
  return unidir::to_hex(serde::encode(*this));
}

ScenarioSpec ScenarioSpec::from_hex(std::string_view hex) {
  return serde::decode<ScenarioSpec>(unidir::from_hex(hex));
}

std::unique_ptr<sim::Adversary> make_adversary(const ScenarioSpec& spec) {
  switch (spec.adversary) {
    case AdversaryKind::Immediate:
      return std::make_unique<sim::ImmediateAdversary>();
    case AdversaryKind::RandomDelay:
      return std::make_unique<sim::RandomDelayAdversary>(1, spec.max_delay);
    case AdversaryKind::Duplicating:
      return std::make_unique<sim::DuplicatingAdversary>(
          static_cast<unsigned>(spec.max_copies), spec.max_delay);
    case AdversaryKind::Gst:
      return std::make_unique<sim::GstAdversary>(spec.gst, spec.gst_delta,
                                                 spec.gst_pre_extra);
    case AdversaryKind::Mutating: {
      sim::MutatingAdversary::Options o;
      o.rate_percent = static_cast<std::uint32_t>(spec.mutate_rate);
      return std::make_unique<sim::MutatingAdversary>(
          std::make_unique<sim::RandomDelayAdversary>(1, spec.max_delay), o);
    }
  }
  throw std::invalid_argument("unknown AdversaryKind");
}

namespace {

/// Type-erased replica accessors: MinBftReplica and PbftReplica share the
/// introspection surface but no base class.
struct ReplicaHandle {
  ProcessId id = kNoProcess;
  std::function<const agreement::ExecutionLog&()> log;
  std::function<std::uint64_t()> executed;
  std::function<crypto::Digest()> digest;
};

crypto::Digest fingerprint_of(const sim::World& world,
                              std::uint64_t completed, Time final_time) {
  serde::Writer w;
  w.uvarint(completed);
  w.uvarint(final_time);
  for (ProcessId p = 0; p < world.size(); ++p) {
    const std::vector<sim::ObservedEvent>& evs = world.transcript(p).events();
    w.uvarint(evs.size());
    for (const sim::ObservedEvent& ev : evs) {
      w.u8(static_cast<std::uint8_t>(ev.kind));
      w.uvarint(ev.from);
      w.uvarint(ev.channel);
      w.str(ev.tag);
      w.bytes(ev.payload);
    }
  }
  return crypto::Sha256::hash(w.buffer());
}

}  // namespace

RunOutcome run_scenario(const ScenarioSpec& spec,
                        const InvariantRegistry& registry, RunMode mode,
                        const ScheduleTrace* trace) {
  UNIDIR_REQUIRE_MSG(mode != RunMode::Replay || trace != nullptr,
                     "Replay mode needs a trace");
  UNIDIR_REQUIRE(spec.n >= 1 &&
                 (!spec.requests.empty() || spec.workload.enabled()));
  UNIDIR_REQUIRE(spec.batch_size >= 1 && spec.replica_pipeline >= 1);

  RecordingAdversary* recorder = nullptr;
  ReplayAdversary* replayer = nullptr;
  std::unique_ptr<sim::Adversary> adversary;
  switch (mode) {
    case RunMode::Direct:
      adversary = make_adversary(spec);
      break;
    case RunMode::Record: {
      auto rec = std::make_unique<RecordingAdversary>(make_adversary(spec));
      recorder = rec.get();
      adversary = std::move(rec);
      break;
    }
    case RunMode::Replay: {
      auto rep = std::make_unique<ReplayAdversary>(*trace);
      replayer = rep.get();
      adversary = std::move(rep);
      break;
    }
  }

  // The USIG directory must outlive the world whose replicas reference it.
  std::unique_ptr<agreement::SgxUsigDirectory> usigs;
  sim::World world(spec.seed, std::move(adversary));
  if (spec.verify_threads != 1)
    world.set_verify_threads(static_cast<std::size_t>(spec.verify_threads));

  RunOutcome out;
  world.network().set_observer(
      [&out](const sim::Envelope&, sim::DecisionPoint,
             const std::optional<Time>&) { ++out.decisions; });

  std::vector<ProcessId> ids;
  for (std::uint64_t i = 0; i < spec.n; ++i)
    ids.push_back(static_cast<ProcessId>(i));

  std::vector<ReplicaHandle> handles;
  if (spec.protocol == ProtocolKind::MinBft) {
    usigs = std::make_unique<agreement::SgxUsigDirectory>(world.keys());
    for (std::uint64_t i = 0; i < spec.n; ++i) {
      agreement::MinBftReplica::Options o;
      o.replicas = ids;
      o.f = static_cast<std::size_t>(spec.f);
      o.view_change_timeout = spec.view_change_timeout;
      o.commit_quorum = static_cast<std::size_t>(spec.commit_quorum);
      if (spec.checkpoint_interval != 0)
        o.checkpoint_interval = spec.checkpoint_interval;
      o.batch_size = static_cast<std::size_t>(spec.batch_size);
      o.batch_timeout = spec.batch_timeout_ticks;
      o.pipeline_depth = static_cast<std::size_t>(spec.replica_pipeline);
      auto& r = world.spawn<agreement::MinBftReplica>(
          o, *usigs, std::make_unique<agreement::KvStateMachine>());
      handles.push_back({r.id(),
                         [&r]() -> const auto& { return r.execution_log(); },
                         [&r] { return r.executed_count(); },
                         [&r] { return r.state_digest(); }});
    }
  } else {
    for (std::uint64_t i = 0; i < spec.n; ++i) {
      agreement::PbftReplica::Options o;
      o.replicas = ids;
      o.f = static_cast<std::size_t>(spec.f);
      o.view_change_timeout = spec.view_change_timeout;
      if (spec.checkpoint_interval != 0)
        o.checkpoint_interval = spec.checkpoint_interval;
      o.batch_size = static_cast<std::size_t>(spec.batch_size);
      o.batch_timeout = spec.batch_timeout_ticks;
      o.pipeline_depth = static_cast<std::size_t>(spec.replica_pipeline);
      auto& r = world.spawn<agreement::PbftReplica>(
          o, std::make_unique<agreement::KvStateMachine>());
      handles.push_back({r.id(),
                         [&r]() -> const auto& { return r.execution_log(); },
                         [&r] { return r.executed_count(); },
                         [&r] { return r.state_digest(); }});
    }
  }

  agreement::SmrClient::Options copt;
  copt.replicas = ids;
  copt.f = static_cast<std::size_t>(spec.f);
  copt.resend_timeout = spec.resend_timeout;
  copt.max_attempts = static_cast<std::size_t>(spec.client_max_attempts);
  copt.max_outstanding = static_cast<std::size_t>(spec.pipeline_depth);

  // Every client in the run — the legacy spec.requests client (if any)
  // plus the workload fleet; completion is aggregated across all of them.
  std::vector<agreement::SmrClient*> fleet;
  if (!spec.requests.empty()) {
    auto& client = world.spawn<agreement::SmrClient>(copt);
    for (const Bytes& op : spec.requests) client.submit(op);
    fleet.push_back(&client);
  }
  if (spec.workload.enabled()) {
    const std::vector<sim::WorkloadSpec::ClientPlan> plans =
        spec.workload.plan();
    for (std::size_t c = 0; c < plans.size(); ++c) {
      agreement::SmrClient::Options wopt = copt;
      // Closed-loop clients are throttled by their outstanding window;
      // open-loop clients must never queue behind it — arrivals fire
      // regardless of completions.
      wopt.max_outstanding = spec.workload.open_loop
                                 ? static_cast<std::size_t>(
                                       spec.workload.requests_per_client)
                                 : static_cast<std::size_t>(std::max<
                                       std::uint64_t>(
                                       1, spec.workload.max_outstanding));
      auto& wc = world.spawn<agreement::SmrClient>(wopt);
      fleet.push_back(&wc);
      for (std::size_t k = 0; k < plans[c].arrivals.size(); ++k) {
        const sim::WorkloadSpec::Arrival& a = plans[c].arrivals[k];
        Bytes op = agreement::KvStateMachine::put_op(
            "wk" + std::to_string(a.key),
            "c" + std::to_string(c) + "." + std::to_string(k));
        if (spec.workload.open_loop)
          world.simulator().at(a.at, [&wc, op = std::move(op)] {
            wc.submit(op);
          });
        else
          wc.submit(std::move(op));
      }
    }
  }

  for (const CrashEvent& ev : spec.crashes)
    world.simulator().at(ev.when,
                         [&world, v = ev.victim] { world.crash(v); });

  for (const RecoveryEvent& ev : spec.recoveries) {
    world.simulator().at(ev.crash_at,
                         [&world, v = ev.victim] { world.crash(v); });
    // Restart the trusted device first: on_recover talks to it.
    world.simulator().at(
        ev.restart_at,
        [&world, dir = usigs.get(), v = ev.victim,
         durable = !spec.volatile_trusted_state] {
          if (!world.crashed(v)) return;  // hand-built spec double-scheduled
          if (dir) dir->restart_device(v, durable);
          world.restart(v);
        });
  }

  if (spec.trace) world.tracer().enable();
  world.start();
  out.events = world.run_to_quiescence(
      static_cast<std::size_t>(spec.max_events));

  out.completed = 0;
  out.gave_up = 0;
  for (const agreement::SmrClient* c : fleet) {
    out.completed += c->completed();
    out.gave_up += c->gave_up();
  }
  out.expected = spec.requests.size() + spec.workload.total_requests();
  out.final_time = world.now();
  out.net = world.network().stats();
  out.sim = world.simulator().stats();
  out.sig = world.keys().verify_stats();
  out.wire = world.wire_stats();
  world.publish_stats();
  out.metrics = world.metrics().snapshot();
  if (spec.trace) out.trace_json = world.tracer().to_chrome_json();
  out.fingerprint = fingerprint_of(world, out.completed, out.final_time);

  ExplorationContext ctx;
  ctx.world = &world;
  for (const ReplicaHandle& h : handles)
    if (world.correct(h.id))
      ctx.smr.push_back({h.id, &h.log(), h.executed(), h.digest()});
  ctx.completed = out.completed;
  ctx.expected = out.expected;
  for (ProcessId p = 0; p < world.size(); ++p)
    if (world.correct(p)) ctx.transcripts.emplace_back(p, &world.transcript(p));
  out.violation = registry.check(ctx);

  if (recorder) out.trace = recorder->take_trace();
  if (replayer) {
    out.trace = replayer->consumed_trace();
    out.replay_missed = replayer->missed();
  }
  return out;
}

}  // namespace unidir::explore
