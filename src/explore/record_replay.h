// Record/replay adversary decorators.
//
// RecordingAdversary wraps any Adversary and writes every decision it makes
// into a ScheduleTrace; ReplayAdversary re-imposes a trace on a fresh
// execution. Because the simulator is deterministic, an unmodified
// (spec, trace) pair replays byte-for-byte: every adversary consult finds
// its recorded decision. A *shrunken* scenario produces fewer or different
// messages; consults that no longer match anything recorded fall back to
// immediate delivery (delay 1, one copy), which keeps the replay total —
// the shrinker only keeps a mutation if the violation still reproduces.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "explore/trace.h"
#include "sim/network.h"

namespace unidir::explore {

class RecordingAdversary final : public sim::Adversary {
 public:
  explicit RecordingAdversary(std::unique_ptr<sim::Adversary> inner);

  std::optional<Time> on_send(const sim::Envelope& env, sim::Rng& rng) override;
  unsigned copies(const sim::Envelope& env, sim::Rng& rng) override;
  std::optional<Time> on_release(const sim::Envelope& env,
                                 sim::Rng& rng) override;
  // Forwarded so recording composes with MutatingAdversary. Mutation runs
  // before on_send, so the trace keys see the post-mutation bytes; replay
  // cannot re-impose the mutation itself (use Direct mode for fuzz repros).
  bool mutate(sim::Envelope& env, sim::Rng& rng) override {
    return inner_->mutate(env, rng);
  }

  const ScheduleTrace& trace() const { return trace_; }
  ScheduleTrace take_trace() { return std::move(trace_); }

 private:
  void record(DecisionKind kind, const sim::Envelope& env,
              const std::optional<Time>& delay, std::uint64_t copies);

  std::unique_ptr<sim::Adversary> inner_;
  ScheduleTrace trace_;
};

class ReplayAdversary final : public sim::Adversary {
 public:
  explicit ReplayAdversary(const ScheduleTrace& trace);

  std::optional<Time> on_send(const sim::Envelope& env, sim::Rng& rng) override;
  unsigned copies(const sim::Envelope& env, sim::Rng& rng) override;
  std::optional<Time> on_release(const sim::Envelope& env,
                                 sim::Rng& rng) override;

  /// Consults answered from the trace.
  std::size_t matched() const { return matched_; }
  /// Consults with no recorded decision (fallback applied).
  std::size_t missed() const { return missed_; }

  /// The decisions actually consumed, in original trace order. After a
  /// scenario has been shrunk, this garbage-collects decisions for messages
  /// that no longer occur.
  ScheduleTrace consumed_trace() const;

 private:
  const ScheduleDecision* next(DecisionKind kind, const sim::Envelope& env);

  ScheduleTrace trace_;
  // Per (kind, key) FIFO of indices into trace_.decisions.
  std::map<std::pair<std::uint8_t, MessageKey>, std::deque<std::size_t>>
      queues_;
  std::vector<bool> used_;
  std::size_t matched_ = 0;
  std::size_t missed_ = 0;
};

}  // namespace unidir::explore
