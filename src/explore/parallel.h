// Parallel scenario sweeps with deterministic result merging.
//
// Every ScenarioSpec execution is a closed system: run_scenario() builds a
// private World (simulator, network, key registry, replicas) keyed only by
// the spec, so scenarios never share mutable state and are safe to run on
// separate threads. ParallelRunner fans a batch of specs across a
// std::thread pool; each worker claims the next unclaimed index and writes
// its RunOutcome into that index's preassigned slot. The merged vector is
// therefore in input order and bit-identical to what a serial loop over the
// same specs produces — parallelism changes wall-clock time, never results.
// (tests/parallel_sweep_test.cpp holds the fingerprint-equality proof.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "explore/scenario.h"
#include "obs/rate.h"

namespace unidir::explore {

/// Timing of the most recent ParallelRunner batch.
struct ParallelStats {
  std::size_t threads = 0;         // workers used for the batch
  std::size_t scenarios = 0;       // specs executed
  std::uint64_t total_events = 0;  // summed simulator events
  std::uint64_t wall_ns = 0;       // wall time for the whole batch

  double events_per_sec() const {
    return obs::rate_per_sec(total_events, wall_ns);
  }
};

class ParallelRunner {
 public:
  /// `threads` == 0 selects std::thread::hardware_concurrency() (min 1).
  /// `threads` == 1 runs inline on the calling thread (no pool).
  explicit ParallelRunner(std::size_t threads = 0);

  std::size_t threads() const { return threads_; }

  /// Runs every spec through run_scenario() and returns the outcomes in
  /// input order. The first exception thrown by any scenario is rethrown
  /// on the calling thread after all workers join.
  std::vector<RunOutcome> run_scenarios(const std::vector<ScenarioSpec>& specs,
                                        const InvariantRegistry& registry,
                                        RunMode mode = RunMode::Direct) const;

  /// Stats for the most recent run_scenarios() call.
  const ParallelStats& last_stats() const { return stats_; }

 private:
  std::size_t threads_ = 1;
  mutable ParallelStats stats_{};
};

}  // namespace unidir::explore
