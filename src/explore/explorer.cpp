#include "explore/explorer.h"

#include <sstream>
#include <utility>

#include "explore/parallel.h"

namespace unidir::explore {

std::string Finding::replay_snippet() const {
  std::ostringstream os;
  os << "VIOLATION " << violation.describe() << "\n"
     << "  found in: " << spec.describe() << "\n"
     << "  shrunk to: " << shrunk_spec.describe() << "\n"
     << "  schedule: " << shrunk_trace.summary() << " (recorded "
     << recorded_decisions << ", " << shrink_runs << " shrink replays, "
     << (deterministic ? "replay deterministic" : "REPLAY UNSTABLE") << ")\n"
     << "  reproduce with:\n"
     << "    using namespace unidir::explore;\n"
     << "    auto spec  = ScenarioSpec::from_hex(\"" << shrunk_spec.to_hex()
     << "\");\n"
     << "    auto trace = ScheduleTrace::from_hex(\"" << shrunk_trace.to_hex()
     << "\");\n"
     << "    auto out = run_scenario(spec, InvariantRegistry::standard_smr(),\n"
     << "                            RunMode::Replay, &trace);\n"
     << "    // out.violation => " << violation.invariant << "\n"
     << "  artifacts: trace_json " << trace_json.size()
     << " bytes, metrics_text " << metrics_text.size() << " bytes\n";
  return os.str();
}

std::string ExplorationReport::summary() const {
  std::ostringstream os;
  os << "explored " << runs << " executions, " << findings.size()
     << " invariant violation(s)";
  if (!findings.empty()) {
    std::size_t deterministic = 0;
    for (const Finding& f : findings)
      if (f.deterministic) ++deterministic;
    os << " (" << deterministic << " reproduce deterministically)";
  }
  return os.str();
}

Explorer::Explorer(SweepPlan plan, InvariantRegistry registry)
    : plan_(std::move(plan)), registry_(std::move(registry)) {
  UNIDIR_REQUIRE(!plan_.protocols.empty() && !plan_.adversaries.empty() &&
                 plan_.seeds >= 1);
}

ExplorationReport Explorer::run() const {
  // Record phase: materialize the whole {protocol × adversary × seed} grid
  // and fan it across the runner. Each recording is an independent world;
  // the runner merges outcomes in input order, so the findings below come
  // out identical whatever plan_.threads is.
  std::vector<ScenarioSpec> specs;
  specs.reserve(plan_.protocols.size() * plan_.adversaries.size() *
                plan_.seeds);
  for (ProtocolKind protocol : plan_.protocols)
    for (AdversaryKind adversary : plan_.adversaries)
      for (std::uint64_t s = 0; s < plan_.seeds; ++s)
        specs.push_back(ScenarioSpec::materialize(protocol, adversary,
                                                  plan_.seed_base + s));

  const ParallelRunner runner(plan_.threads);
  std::vector<RunOutcome> outcomes =
      runner.run_scenarios(specs, registry_, RunMode::Record);

  // Shrink + replay certification stays serial, in input order: shrinking
  // replays thousands of candidate schedules against one finding, and
  // serial processing keeps finding order (and so reports) reproducible.
  ExplorationReport report;
  report.runs = outcomes.size();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    RunOutcome& out = outcomes[i];
    if (!out.violation) continue;

    Finding f;
    f.spec = specs[i];
    f.violation = *out.violation;
    f.recorded_decisions = out.trace.decisions.size();
    f.shrunk_spec = specs[i];
    f.shrunk_trace = std::move(out.trace);
    if (plan_.shrink) {
      ShrinkOutcome shr =
          shrink_failure(f.shrunk_spec, f.shrunk_trace, registry_,
                         f.violation.invariant, plan_.shrink_limits);
      f.shrunk_spec = std::move(shr.spec);
      f.shrunk_trace = std::move(shr.trace);
      f.shrink_runs = shr.runs;
    }
    const RunOutcome r1 = run_scenario(f.shrunk_spec, registry_,
                                       RunMode::Replay, &f.shrunk_trace);
    const RunOutcome r2 = run_scenario(f.shrunk_spec, registry_,
                                       RunMode::Replay, &f.shrunk_trace);
    f.deterministic = r1.violation && r2.violation &&
                      r1.violation->invariant == f.violation.invariant &&
                      r2.violation->invariant == f.violation.invariant &&
                      r1.fingerprint == r2.fingerprint;
    // One more traced replay: the finding ships with a virtual-timeline
    // trace and a metrics snapshot next to the repro hex, so diagnosis can
    // start from a picture instead of a re-run.
    ScenarioSpec traced = f.shrunk_spec;
    traced.trace = true;
    const RunOutcome rt =
        run_scenario(traced, registry_, RunMode::Replay, &f.shrunk_trace);
    f.trace_json = rt.trace_json;
    f.metrics_text = rt.metrics.to_text();
    report.findings.push_back(std::move(f));
  }
  return report;
}

}  // namespace unidir::explore
