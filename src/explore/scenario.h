// Explicit, serializable sweep scenarios.
//
// The fault sweep used to draw its whole configuration (delays, pipeline
// depth, crash plan, workload) from a seed inside the test body — a failing
// seed gave a number, not an artifact. ScenarioSpec materializes that draw
// into explicit data: which protocol, which adversary with which
// parameters, the exact client operations, and the exact crash schedule.
// Explicit data is what the shrinker mutates (drop a request, un-crash a
// replica) and what a replay snippet embeds.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/signature.h"
#include "explore/invariants.h"
#include "explore/trace.h"
#include "obs/metrics.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/workload.h"
#include "wire/stats.h"

namespace unidir::explore {

enum class ProtocolKind : std::uint8_t { MinBft = 0, Pbft = 1 };
enum class AdversaryKind : std::uint8_t {
  Immediate = 0,
  RandomDelay = 1,
  Duplicating = 2,
  Gst = 3,
  /// RandomDelay plus byte-level payload corruption (wire::Router's fuzz
  /// partner; see sim::MutatingAdversary). Mutations happen at send time,
  /// so Record mode captures post-mutation bytes, but Replay cannot
  /// re-impose them — use Direct mode for deterministic fuzz repros.
  Mutating = 4,
};

std::string protocol_name(ProtocolKind p);
std::string adversary_name(AdversaryKind a);

struct CrashEvent {
  ProcessId victim = kNoProcess;
  Time when = 1;

  bool operator==(const CrashEvent&) const = default;

  void encode(serde::Writer& w) const;
  static CrashEvent decode(serde::Reader& r);
};

/// A crash paired with a later restart (the crash-recovery fault model,
/// DESIGN.md §9). The pair shrinks as a unit: dropping one keeps every
/// remaining restart matched to its crash.
struct RecoveryEvent {
  ProcessId victim = kNoProcess;
  Time crash_at = 1;
  Time restart_at = 2;

  bool operator==(const RecoveryEvent&) const = default;

  void encode(serde::Writer& w) const;
  static RecoveryEvent decode(serde::Reader& r);
};

struct ScenarioSpec {
  ProtocolKind protocol = ProtocolKind::MinBft;
  AdversaryKind adversary = AdversaryKind::RandomDelay;
  std::uint64_t seed = 1;
  std::uint64_t n = 3;
  std::uint64_t f = 1;

  // Adversary parameters (which apply depends on `adversary`).
  Time max_delay = 1;            // RandomDelay, Duplicating
  std::uint64_t max_copies = 1;  // Duplicating
  Time gst = 0;                  // Gst
  Time gst_delta = 1;            // Gst
  Time gst_pre_extra = 0;        // Gst
  std::uint64_t mutate_rate = 25;  // Mutating: percent of links corrupted

  // Client / protocol knobs.
  std::uint64_t pipeline_depth = 1;
  Time resend_timeout = 200;
  Time view_change_timeout = 150;
  /// MinBFT commit quorum override; 0 = protocol default (f+1). A mutated
  /// knob for deliberately mis-tuning the protocol in explorer self-tests.
  std::uint64_t commit_quorum = 0;

  /// Exact client operations, in submission order (shrinkable).
  std::vector<Bytes> requests;
  /// Exact crash schedule (shrinkable).
  std::vector<CrashEvent> crashes;
  /// Exact crash+restart schedule (shrinkable as whole pairs).
  std::vector<RecoveryEvent> recoveries;
  /// Negative-experiment toggle: restart trusted devices with their state
  /// wiped (power-loss semantics) instead of reloaded from sealed storage.
  /// With MinBFT this re-enables equivocation — the registry catches it.
  bool volatile_trusted_state = false;
  /// Client give-up bound (SmrClient::Options::max_attempts; 0 = forever).
  std::uint64_t client_max_attempts = 0;
  /// Replica checkpoint interval; 0 = protocol default. Recovery scenarios
  /// lower it so durable images are dense enough for restarts to matter.
  std::uint64_t checkpoint_interval = 0;

  std::uint64_t max_events = 2'000'000;

  // Batched-mode replica knobs (DESIGN.md §11). The defaults keep both
  // protocols on their original one-command-per-slot wire path bit-for-bit
  // — batching regression tests rely on that.
  /// Max requests amortized into one slot (replica Options::batch_size).
  std::uint64_t batch_size = 1;
  /// Partial-batch hold time in ticks (replica Options::batch_timeout).
  Time batch_timeout_ticks = 4;
  /// Primary's in-flight slot window (replica Options::pipeline_depth).
  /// Distinct from `pipeline_depth` above, which is the *client's*
  /// outstanding-request window.
  std::uint64_t replica_pipeline = 1;
  /// Client-fleet workload; disabled (inert) by default. When enabled the
  /// run spawns `workload.clients` extra SmrClients after the replicas and
  /// the legacy `requests` client (if any), and `expected` counts both.
  sim::WorkloadSpec workload;

  /// Worker threads for the ordered verification runner (World::
  /// set_verify_threads). 1 = serial inline execution, no pool. 0 = one
  /// per hardware thread. Pure wall-clock knob: results and fingerprints
  /// are identical for every value (verify_runner_test sweeps this).
  std::uint64_t verify_threads = 1;

  /// Record a virtual-time trace and a metrics snapshot into the outcome
  /// (RunOutcome::trace_json / RunOutcome::metrics). Purely observational:
  /// tracing must not change the execution (golden tests compare
  /// fingerprints with the flag on and off).
  bool trace = false;

  bool operator==(const ScenarioSpec&) const = default;

  /// Draws a randomized scenario the way the fault sweep does: random
  /// delays/copies/GST, pipeline depth 1–4, 4–10 KV puts, up to f crashes
  /// at random times (primaries included).
  static ScenarioSpec materialize(ProtocolKind protocol,
                                  AdversaryKind adversary, std::uint64_t seed);

  /// Draws a crash-recovery scenario: the same base draw as `materialize`
  /// (existing sweeps keep their seeds), then replaces the crash schedule
  /// with 1..f crash+restart pairs drawn from a separate stream.
  static ScenarioSpec materialize_recovery(ProtocolKind protocol,
                                           AdversaryKind adversary,
                                           std::uint64_t seed);

  /// Draws a batched scenario: the same base draw as `materialize`, then
  /// batching knobs (batch_size 2–16, replica pipeline 2–6) and a client
  /// fleet (2–6 clients, closed- or open-loop) from a separate stream.
  static ScenarioSpec materialize_batched(ProtocolKind protocol,
                                          AdversaryKind adversary,
                                          std::uint64_t seed);

  /// `materialize_recovery` plus the `materialize_batched` knob draw:
  /// crash+restart pairs over a batched, fleet-driven run.
  static ScenarioSpec materialize_batched_recovery(ProtocolKind protocol,
                                                   AdversaryKind adversary,
                                                   std::uint64_t seed);

  std::string describe() const;

  void encode(serde::Writer& w) const;
  static ScenarioSpec decode(serde::Reader& r);
  std::string to_hex() const;
  static ScenarioSpec from_hex(std::string_view hex);
};

/// Builds the spec's adversary (the *inner* one — callers wrap it for
/// record/replay).
std::unique_ptr<sim::Adversary> make_adversary(const ScenarioSpec& spec);

enum class RunMode : std::uint8_t {
  Direct,  // spec's own adversary, no trace
  Record,  // spec's adversary wrapped in RecordingAdversary
  Replay,  // ReplayAdversary re-imposing a supplied trace
};

struct RunOutcome {
  std::uint64_t completed = 0;
  std::uint64_t expected = 0;
  /// Requests the client abandoned (spec.client_max_attempts exhausted).
  std::uint64_t gave_up = 0;
  Time final_time = 0;
  std::uint64_t events = 0;
  /// Scheduling decisions observed via the Network tap.
  std::uint64_t decisions = 0;
  sim::NetworkStats net{};
  /// Event-queue counters for this run (ring fast path, peak depth, ...).
  sim::SimulatorStats sim{};
  /// Signature verification counters (memo hits vs HMACs computed).
  crypto::VerifyStats sig{};
  /// Per-channel, per-message-type wire counters (decode boundary drops).
  wire::StatsHub wire{};
  std::optional<InvariantViolation> violation;
  /// Record mode: the captured trace. Replay mode: the consumed decisions
  /// (garbage-collected trace). Direct mode: empty.
  ScheduleTrace trace;
  /// Replay mode: consults that found no recorded decision.
  std::size_t replay_missed = 0;
  /// Unified metrics snapshot (layer counters + protocol histograms),
  /// published after the run. Wall-clock values are excluded, so equal
  /// seeds yield equal snapshots.
  obs::MetricsSnapshot metrics;
  /// Chrome-trace JSON; empty unless spec.trace was set.
  std::string trace_json;
  /// Fingerprint of everything processes observed (all transcripts) plus
  /// completion and final time. Two runs with equal fingerprints executed
  /// indistinguishably.
  crypto::Digest fingerprint{};
};

/// Runs one scenario end-to-end and checks the registry's invariants.
/// `trace` is required iff mode == Replay.
RunOutcome run_scenario(const ScenarioSpec& spec,
                        const InvariantRegistry& registry,
                        RunMode mode = RunMode::Direct,
                        const ScheduleTrace* trace = nullptr);

}  // namespace unidir::explore
