// Invariant registry: reusable, pluggable execution checkers.
//
// After a run, an ExplorationContext is assembled from whatever views the
// harness has — SMR execution logs, client completion counts, per-process
// transcripts, round histories — and every registered invariant is asked
// for a violation witness. Checkers are defensive about missing views: an
// invariant whose inputs are absent reports nothing (vacuously holds), so
// one registry serves SMR sweeps, round-based protocols and SRB runs alike.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "agreement/smr.h"
#include "rounds/checkers.h"
#include "sim/transcript.h"
#include "sim/world.h"

namespace unidir::explore {

/// One correct replica's post-run state, as seen by SMR checkers.
struct SmrReplicaView {
  ProcessId id = kNoProcess;
  const agreement::ExecutionLog* log = nullptr;
  std::uint64_t executed = 0;
  crypto::Digest digest{};
};

/// Everything checkers may inspect. Views that don't apply to the run are
/// simply left empty.
struct ExplorationContext {
  const sim::World* world = nullptr;
  /// Correct replicas only — the paper's guarantees quantify over them.
  std::vector<SmrReplicaView> smr;
  std::uint64_t completed = 0;
  std::uint64_t expected = 0;
  /// (id, transcript) of every correct process, for transcript checkers.
  std::vector<std::pair<ProcessId, const sim::Transcript*>> transcripts;
  /// Round histories of correct processes, for directionality checkers.
  std::vector<rounds::ProcessHistory> histories;
};

struct InvariantViolation {
  std::string invariant;
  std::string message;

  std::string describe() const { return invariant + ": " + message; }
};

struct Invariant {
  std::string name;
  std::function<std::optional<std::string>(const ExplorationContext&)> check;
};

class InvariantRegistry {
 public:
  InvariantRegistry& add(Invariant inv);

  /// Runs every invariant; returns the first violation found, or nullopt.
  std::optional<InvariantViolation> check(const ExplorationContext& ctx) const;

  const std::vector<Invariant>& invariants() const { return invariants_; }

  /// The SMR sweep suite: prefix consistency, digest equality, client
  /// completion.
  static InvariantRegistry standard_smr();

 private:
  std::vector<Invariant> invariants_;
};

// ---- reusable checkers -----------------------------------------------------

/// SMR safety: correct replicas' execution logs are prefix-consistent.
Invariant smr_prefix_consistency();

/// Correct replicas with equal execution counts hold identical state
/// digests.
Invariant smr_digest_equality();

/// Liveness (valid only under eventually-fair adversaries): every client
/// request completed.
Invariant client_completion();

/// Network accounting: every message and byte entering the network (sends,
/// duplicate copies, mutation growth) leaves by delivery, an attributed
/// drop, or is still held; vacuous for runs cut off by the event cap.
Invariant network_byte_conservation();

/// Unidirectionality per round (the paper's Definition): for every pair of
/// correct processes and common round, at least one direction got through.
Invariant unidirectional_rounds();

/// SRB safety/total-order over transcripts: the sequences of outputs with
/// `tag` at correct processes are pairwise prefix-consistent (everyone
/// delivers the same values in the same order, laggards being prefixes).
Invariant tagged_output_total_order(std::string tag = "srb-deliver");

/// Batch atomicity over transcripts (batched SMR mode, DESIGN.md §11).
/// Replicas emit one "smr-batch" output per executed batch — (view,
/// counter/seq, member keys) — followed by that batch's "smr-exec"
/// outputs. The checker walks each correct replica's transcript in order
/// and rejects: a command key executed twice (exactly-once broken); an
/// execution that skips ahead of or departs from the open batch's member
/// order; a batch member never executed at all (split batch) — unless an
/// earlier batch already executed it (client-retry dedup) or a state
/// transfer installed it (the "smr-install" witness), the two legal
/// absences. Across replicas, two batches with the same (view, counter)
/// must carry identical member lists. Vacuous for unbatched runs, which
/// emit no "smr-batch" outputs.
Invariant batch_atomicity();

/// Deliberately tight bound — NOT a real SMR property. Fails as soon as any
/// replica executes more than `limit` commands; used to validate the
/// record→shrink→replay machinery itself (a guaranteed, deterministic
/// "bug") and by `examples/explore --inject-bug`.
Invariant bounded_executions(std::uint64_t limit);

}  // namespace unidir::explore
