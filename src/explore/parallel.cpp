#include "explore/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

namespace unidir::explore {

ParallelRunner::ParallelRunner(std::size_t threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
}

std::vector<RunOutcome> ParallelRunner::run_scenarios(
    const std::vector<ScenarioSpec>& specs, const InvariantRegistry& registry,
    RunMode mode) const {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<RunOutcome> results(specs.size());

  // Never spin up more workers than there is work.
  const std::size_t workers = std::min(threads_, specs.size());

  if (workers <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i)
      results[i] = run_scenario(specs[i], registry, mode);
  } else {
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto work = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= specs.size()) return;
        try {
          results[i] = run_scenario(specs[i], registry, mode);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  stats_.threads = std::max<std::size_t>(workers, 1);
  stats_.scenarios = specs.size();
  stats_.total_events = 0;
  for (const RunOutcome& r : results) stats_.total_events += r.events;
  stats_.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return results;
}

}  // namespace unidir::explore
