#include "explore/record_replay.h"

#include <utility>

#include "common/check.h"

namespace unidir::explore {

// ---- RecordingAdversary ----------------------------------------------------

RecordingAdversary::RecordingAdversary(std::unique_ptr<sim::Adversary> inner)
    : inner_(std::move(inner)) {
  UNIDIR_REQUIRE(inner_ != nullptr);
}

void RecordingAdversary::record(DecisionKind kind, const sim::Envelope& env,
                                const std::optional<Time>& delay,
                                std::uint64_t copies) {
  ScheduleDecision d;
  d.kind = kind;
  d.key = MessageKey::of(env);
  d.held = !delay.has_value();
  d.delay = delay.value_or(0);
  d.copies = copies;
  trace_.decisions.push_back(d);
}

std::optional<Time> RecordingAdversary::on_send(const sim::Envelope& env,
                                                sim::Rng& rng) {
  const std::optional<Time> delay = inner_->on_send(env, rng);
  record(DecisionKind::Send, env, delay, 1);
  return delay;
}

unsigned RecordingAdversary::copies(const sim::Envelope& env, sim::Rng& rng) {
  const unsigned c = inner_->copies(env, rng);
  record(DecisionKind::Copies, env, Time{0}, c);
  return c;
}

std::optional<Time> RecordingAdversary::on_release(const sim::Envelope& env,
                                                   sim::Rng& rng) {
  const std::optional<Time> delay = inner_->on_release(env, rng);
  record(DecisionKind::Release, env, delay, 1);
  return delay;
}

// ---- ReplayAdversary -------------------------------------------------------

ReplayAdversary::ReplayAdversary(const ScheduleTrace& trace) : trace_(trace) {
  used_.assign(trace_.decisions.size(), false);
  for (std::size_t i = 0; i < trace_.decisions.size(); ++i) {
    const ScheduleDecision& d = trace_.decisions[i];
    queues_[{static_cast<std::uint8_t>(d.kind), d.key}].push_back(i);
  }
}

const ScheduleDecision* ReplayAdversary::next(DecisionKind kind,
                                              const sim::Envelope& env) {
  const auto it =
      queues_.find({static_cast<std::uint8_t>(kind), MessageKey::of(env)});
  if (it == queues_.end() || it->second.empty()) {
    ++missed_;
    return nullptr;
  }
  const std::size_t idx = it->second.front();
  it->second.pop_front();
  used_[idx] = true;
  ++matched_;
  return &trace_.decisions[idx];
}

std::optional<Time> ReplayAdversary::on_send(const sim::Envelope& env,
                                             sim::Rng&) {
  const ScheduleDecision* d = next(DecisionKind::Send, env);
  if (!d) return Time{1};
  if (d->held) return std::nullopt;
  return d->delay;
}

unsigned ReplayAdversary::copies(const sim::Envelope& env, sim::Rng&) {
  const ScheduleDecision* d = next(DecisionKind::Copies, env);
  if (!d) return 1;
  return static_cast<unsigned>(d->copies);
}

std::optional<Time> ReplayAdversary::on_release(const sim::Envelope& env,
                                                sim::Rng&) {
  const ScheduleDecision* d = next(DecisionKind::Release, env);
  if (!d) return Time{1};
  if (d->held) return std::nullopt;
  return d->delay;
}

ScheduleTrace ReplayAdversary::consumed_trace() const {
  ScheduleTrace out;
  for (std::size_t i = 0; i < trace_.decisions.size(); ++i)
    if (used_[i]) out.decisions.push_back(trace_.decisions[i]);
  return out;
}

}  // namespace unidir::explore
