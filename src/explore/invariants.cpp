#include "explore/invariants.h"

#include <map>
#include <set>
#include <sstream>

namespace unidir::explore {

InvariantRegistry& InvariantRegistry::add(Invariant inv) {
  UNIDIR_REQUIRE(!inv.name.empty() && inv.check != nullptr);
  invariants_.push_back(std::move(inv));
  return *this;
}

std::optional<InvariantViolation> InvariantRegistry::check(
    const ExplorationContext& ctx) const {
  for (const Invariant& inv : invariants_) {
    if (std::optional<std::string> msg = inv.check(ctx))
      return InvariantViolation{inv.name, std::move(*msg)};
  }
  return std::nullopt;
}

InvariantRegistry InvariantRegistry::standard_smr() {
  InvariantRegistry r;
  r.add(smr_prefix_consistency());
  r.add(smr_digest_equality());
  r.add(client_completion());
  r.add(network_byte_conservation());
  r.add(batch_atomicity());
  return r;
}

Invariant smr_prefix_consistency() {
  return {"smr-prefix-consistency",
          [](const ExplorationContext& ctx) -> std::optional<std::string> {
            std::vector<std::pair<ProcessId, const agreement::ExecutionLog*>>
                logs;
            for (const SmrReplicaView& r : ctx.smr)
              if (r.log) logs.emplace_back(r.id, r.log);
            if (logs.size() < 2) return std::nullopt;
            return agreement::check_execution_consistency(logs);
          }};
}

Invariant smr_digest_equality() {
  return {"smr-digest-equality",
          [](const ExplorationContext& ctx) -> std::optional<std::string> {
            for (std::size_t i = 0; i < ctx.smr.size(); ++i)
              for (std::size_t j = i + 1; j < ctx.smr.size(); ++j) {
                const SmrReplicaView& a = ctx.smr[i];
                const SmrReplicaView& b = ctx.smr[j];
                if (a.executed == b.executed && a.digest != b.digest) {
                  std::ostringstream os;
                  os << "replicas " << a.id << " and " << b.id
                     << " both executed " << a.executed
                     << " commands but hold different state digests";
                  return os.str();
                }
              }
            return std::nullopt;
          }};
}

Invariant client_completion() {
  return {"client-completion",
          [](const ExplorationContext& ctx) -> std::optional<std::string> {
            if (ctx.completed == ctx.expected) return std::nullopt;
            std::ostringstream os;
            os << "only " << ctx.completed << " of " << ctx.expected
               << " client requests completed";
            return os.str();
          }};
}

Invariant network_byte_conservation() {
  return {"network-byte-conservation",
          [](const ExplorationContext& ctx) -> std::optional<std::string> {
            if (!ctx.world) return std::nullopt;
            // A run cut off by the event cap leaves deliveries queued inside
            // the simulator — neither delivered, dropped nor held — so the
            // ledger only balances for runs that reached quiescence.
            const sim::SimulatorStats& q = ctx.world->simulator().stats();
            if (q.scheduled != q.executed) return std::nullopt;
            const sim::NetworkStats& s = ctx.world->network().stats();
            // Every message and every byte entering the network (sends,
            // duplicate copies, mutation growth) must be accounted for by
            // an exit path (delivery, an attributed drop, still held).
            // Mutation shrinkage leaves the inflow side as slack, hence
            // inequalities rather than equalities.
            const std::uint64_t msgs_in =
                s.messages_sent + s.messages_duplicated;
            const std::uint64_t msgs_out = s.messages_delivered +
                                           s.messages_dropped +
                                           s.messages_held;
            if (msgs_in != msgs_out) {
              std::ostringstream os;
              os << "message ledger broken: sent+duplicated=" << msgs_in
                 << " but delivered+dropped+held=" << msgs_out;
              return os.str();
            }
            const std::uint64_t bytes_in =
                s.bytes_sent + s.bytes_duplicated + s.bytes_mutation_added;
            const std::uint64_t bytes_out =
                s.bytes_delivered + s.bytes_dropped + s.bytes_held;
            if (bytes_in < bytes_out) {
              std::ostringstream os;
              os << "byte ledger broken: sent+duplicated+mutation_added="
                 << bytes_in << " < delivered+dropped+held=" << bytes_out;
              return os.str();
            }
            if (bytes_in - s.bytes_mutation_removed > bytes_out) {
              std::ostringstream os;
              os << "byte ledger broken: "
                 << "sent+duplicated+mutation_added-mutation_removed="
                 << bytes_in - s.bytes_mutation_removed
                 << " > delivered+dropped+held=" << bytes_out;
              return os.str();
            }
            return std::nullopt;
          }};
}

Invariant unidirectional_rounds() {
  return {"unidirectional-rounds",
          [](const ExplorationContext& ctx) -> std::optional<std::string> {
            if (ctx.histories.size() < 2) return std::nullopt;
            if (std::optional<rounds::DirectionalityViolation> v =
                    rounds::check_unidirectional(ctx.histories))
              return v->describe();
            return std::nullopt;
          }};
}

Invariant tagged_output_total_order(std::string tag) {
  return {"total-order[" + tag + "]",
          [tag](const ExplorationContext& ctx) -> std::optional<std::string> {
            std::vector<std::pair<ProcessId, std::vector<sim::ObservedEvent>>>
                seqs;
            for (const auto& [id, t] : ctx.transcripts)
              if (t) seqs.emplace_back(id, t->outputs(tag));
            for (std::size_t i = 0; i < seqs.size(); ++i)
              for (std::size_t j = i + 1; j < seqs.size(); ++j) {
                const auto& [pa, a] = seqs[i];
                const auto& [pb, b] = seqs[j];
                const std::size_t common = std::min(a.size(), b.size());
                for (std::size_t k = 0; k < common; ++k)
                  if (a[k].payload != b[k].payload) {
                    std::ostringstream os;
                    os << "processes " << pa << " and " << pb
                       << " diverge at '" << tag << "' output index " << k;
                    return os.str();
                  }
              }
            return std::nullopt;
          }};
}

Invariant batch_atomicity() {
  return {
      "batch-atomicity",
      [](const ExplorationContext& ctx) -> std::optional<std::string> {
        using Key = std::pair<ProcessId, std::uint64_t>;
        // Canonical member list per (view, counter), first reporter wins;
        // (view, counter) identifies a slot globally in both protocols
        // (PBFT sequence numbers restart per view, but the view number
        // disambiguates).
        std::map<std::pair<std::uint64_t, std::uint64_t>,
                 std::pair<ProcessId, std::vector<Key>>>
            canonical;
        for (const auto& [id, tr] : ctx.transcripts) {
          if (!tr) continue;
          // A restarted replica rewinds to its last durable checkpoint and
          // legitimately re-executes (and re-groups) what the crash wiped,
          // all in the same transcript. Exactly-once and order checks
          // don't apply to it — but its batch markers still feed the
          // cross-replica membership check below.
          const bool restarted =
              ctx.world != nullptr && ctx.world->incarnation(id) > 0;
          std::set<Key> executed;
          std::vector<Key> open;  // the open batch's members, in order
          std::size_t open_idx = 0;
          std::uint64_t open_view = 0, open_ctr = 0;
          bool in_batch = false;
          // A batch member missing from the exec stream is legal only if
          // some earlier batch already executed it (dedup of a client
          // retry); anything else is a split batch.
          auto close_open = [&]() -> std::optional<std::string> {
            if (restarted) return std::nullopt;
            for (; open_idx < open.size(); ++open_idx) {
              if (executed.count(open[open_idx])) continue;
              std::ostringstream os;
              os << "replica " << id << ": batch (view=" << open_view
                 << ", counter=" << open_ctr << ") member client="
                 << open[open_idx].first << " rid=" << open[open_idx].second
                 << " was never executed (split batch)";
              return os.str();
            }
            return std::nullopt;
          };
          for (const sim::ObservedEvent& ev : tr->events()) {
            if (ev.kind != sim::ObservedEvent::Kind::LocalOutput) continue;
            if (ev.tag == "smr-batch") {
              if (auto bad = close_open()) return bad;
              serde::Reader r(ev.payload.span());
              open_view = r.uvarint();
              open_ctr = r.uvarint();
              const std::uint64_t count = r.uvarint();
              open.clear();
              for (std::uint64_t k = 0; k < count; ++k) {
                const auto client = serde::read<ProcessId>(r);
                const std::uint64_t rid = r.uvarint();
                open.emplace_back(client, rid);
              }
              r.expect_done();
              open_idx = 0;
              in_batch = true;
              auto [it, fresh] = canonical.try_emplace(
                  std::make_pair(open_view, open_ctr), id, open);
              if (!fresh && it->second.second != open) {
                std::ostringstream os;
                os << "replicas " << it->second.first << " and " << id
                   << " disagree on batch (view=" << open_view
                   << ", counter=" << open_ctr << ") membership";
                return os.str();
              }
            } else if (ev.tag == "smr-install") {
              // State transfer installed these commands' effects without
              // executing them; treat them as executed from here on so
              // later batches may legally skip them.
              serde::Reader r(ev.payload.span());
              const std::uint64_t count = r.uvarint();
              for (std::uint64_t k = 0; k < count; ++k) {
                const auto client = serde::read<ProcessId>(r);
                const std::uint64_t rid = r.uvarint();
                executed.emplace(client, rid);
              }
              r.expect_done();
            } else if (ev.tag == "smr-exec") {
              if (restarted) continue;
              const auto cmd =
                  serde::decode<agreement::Command>(ev.payload.span());
              const Key k = cmd.key();
              if (executed.count(k)) {
                std::ostringstream os;
                os << "replica " << id << " executed client=" << k.first
                   << " rid=" << k.second << " twice";
                return os.str();
              }
              if (in_batch) {
                // Members already satisfied by an earlier batch are
                // skipped at execution; skip them here too.
                while (open_idx < open.size() &&
                       executed.count(open[open_idx]))
                  ++open_idx;
                if (open_idx >= open.size() || open[open_idx] != k) {
                  std::ostringstream os;
                  os << "replica " << id << " executed client=" << k.first
                     << " rid=" << k.second
                     << " outside its batch (view=" << open_view
                     << ", counter=" << open_ctr << ") order";
                  return os.str();
                }
                ++open_idx;
              }
              executed.insert(k);
            }
          }
          if (auto bad = close_open()) return bad;
        }
        return std::nullopt;
      }};
}

Invariant bounded_executions(std::uint64_t limit) {
  return {"bounded-executions",
          [limit](const ExplorationContext& ctx) -> std::optional<std::string> {
            for (const SmrReplicaView& r : ctx.smr)
              if (r.executed > limit) {
                std::ostringstream os;
                os << "replica " << r.id << " executed " << r.executed
                   << " commands (injected bound: " << limit << ")";
                return os.str();
              }
            return std::nullopt;
          }};
}

}  // namespace unidir::explore
