#include "explore/invariants.h"

#include <sstream>

namespace unidir::explore {

InvariantRegistry& InvariantRegistry::add(Invariant inv) {
  UNIDIR_REQUIRE(!inv.name.empty() && inv.check != nullptr);
  invariants_.push_back(std::move(inv));
  return *this;
}

std::optional<InvariantViolation> InvariantRegistry::check(
    const ExplorationContext& ctx) const {
  for (const Invariant& inv : invariants_) {
    if (std::optional<std::string> msg = inv.check(ctx))
      return InvariantViolation{inv.name, std::move(*msg)};
  }
  return std::nullopt;
}

InvariantRegistry InvariantRegistry::standard_smr() {
  InvariantRegistry r;
  r.add(smr_prefix_consistency());
  r.add(smr_digest_equality());
  r.add(client_completion());
  return r;
}

Invariant smr_prefix_consistency() {
  return {"smr-prefix-consistency",
          [](const ExplorationContext& ctx) -> std::optional<std::string> {
            std::vector<std::pair<ProcessId, const agreement::ExecutionLog*>>
                logs;
            for (const SmrReplicaView& r : ctx.smr)
              if (r.log) logs.emplace_back(r.id, r.log);
            if (logs.size() < 2) return std::nullopt;
            return agreement::check_execution_consistency(logs);
          }};
}

Invariant smr_digest_equality() {
  return {"smr-digest-equality",
          [](const ExplorationContext& ctx) -> std::optional<std::string> {
            for (std::size_t i = 0; i < ctx.smr.size(); ++i)
              for (std::size_t j = i + 1; j < ctx.smr.size(); ++j) {
                const SmrReplicaView& a = ctx.smr[i];
                const SmrReplicaView& b = ctx.smr[j];
                if (a.executed == b.executed && a.digest != b.digest) {
                  std::ostringstream os;
                  os << "replicas " << a.id << " and " << b.id
                     << " both executed " << a.executed
                     << " commands but hold different state digests";
                  return os.str();
                }
              }
            return std::nullopt;
          }};
}

Invariant client_completion() {
  return {"client-completion",
          [](const ExplorationContext& ctx) -> std::optional<std::string> {
            if (ctx.completed == ctx.expected) return std::nullopt;
            std::ostringstream os;
            os << "only " << ctx.completed << " of " << ctx.expected
               << " client requests completed";
            return os.str();
          }};
}

Invariant unidirectional_rounds() {
  return {"unidirectional-rounds",
          [](const ExplorationContext& ctx) -> std::optional<std::string> {
            if (ctx.histories.size() < 2) return std::nullopt;
            if (std::optional<rounds::DirectionalityViolation> v =
                    rounds::check_unidirectional(ctx.histories))
              return v->describe();
            return std::nullopt;
          }};
}

Invariant tagged_output_total_order(std::string tag) {
  return {"total-order[" + tag + "]",
          [tag](const ExplorationContext& ctx) -> std::optional<std::string> {
            std::vector<std::pair<ProcessId, std::vector<sim::ObservedEvent>>>
                seqs;
            for (const auto& [id, t] : ctx.transcripts)
              if (t) seqs.emplace_back(id, t->outputs(tag));
            for (std::size_t i = 0; i < seqs.size(); ++i)
              for (std::size_t j = i + 1; j < seqs.size(); ++j) {
                const auto& [pa, a] = seqs[i];
                const auto& [pb, b] = seqs[j];
                const std::size_t common = std::min(a.size(), b.size());
                for (std::size_t k = 0; k < common; ++k)
                  if (a[k].payload != b[k].payload) {
                    std::ostringstream os;
                    os << "processes " << pa << " and " << pb
                       << " diverge at '" << tag << "' output index " << k;
                    return os.str();
                  }
              }
            return std::nullopt;
          }};
}

Invariant bounded_executions(std::uint64_t limit) {
  return {"bounded-executions",
          [limit](const ExplorationContext& ctx) -> std::optional<std::string> {
            for (const SmrReplicaView& r : ctx.smr)
              if (r.executed > limit) {
                std::ostringstream os;
                os << "replica " << r.id << " executed " << r.executed
                   << " commands (injected bound: " << limit << ")";
                return os.str();
              }
            return std::nullopt;
          }};
}

}  // namespace unidir::explore
