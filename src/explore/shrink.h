// Delta-debugging shrinker for failing executions.
//
// Given a (spec, trace) pair under which an invariant is violated, greedily
// minimizes both while the SAME invariant keeps failing under replay:
//
//   1. un-crash replicas (drop crash events one at a time, then drop
//      crash+restart pairs whole so restarts stay matched to crashes),
//   2. drop client requests (ddmin-style chunk removal),
//   3. collapse scheduling delays toward 1 and duplicate copies toward 1
//      (all-at-once first, then chunked, then per-decision),
//   4. garbage-collect trace decisions the shrunken scenario never consults.
//
// Every candidate is validated by a full deterministic replay, so the
// result is always a genuinely failing artifact, never a guess.
#pragma once

#include "explore/invariants.h"
#include "explore/scenario.h"
#include "explore/trace.h"

namespace unidir::explore {

struct ShrinkLimits {
  /// Budget of replays the shrinker may spend; once exhausted it keeps the
  /// best result so far.
  std::size_t max_runs = 600;
};

struct ShrinkOutcome {
  ScenarioSpec spec;
  ScheduleTrace trace;
  std::size_t runs = 0;        // replays executed
  std::size_t reductions = 0;  // accepted shrink steps
};

/// Requires that (spec, trace) currently violates `invariant` when
/// replayed; returns a minimized pair that still does.
ShrinkOutcome shrink_failure(const ScenarioSpec& spec,
                             const ScheduleTrace& trace,
                             const InvariantRegistry& registry,
                             const std::string& invariant,
                             const ShrinkLimits& limits = {});

}  // namespace unidir::explore
