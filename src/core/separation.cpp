#include "core/separation.h"

#include <memory>
#include <set>
#include <sstream>

#include "broadcast/srb_hub.h"
#include "common/serde.h"
#include "sim/adversaries.h"
#include "sim/world.h"
#include "wire/channels.h"

namespace unidir::core {

namespace {

constexpr sim::Channel kSrbCh = wire::kSeparationSrbCh;

/// A process attempting one "round" over SRB: broadcast a round message,
/// finish the round once round messages from n−f distinct processes
/// (counting itself) have been delivered. This is the canonical candidate
/// protocol — any protocol must release processes under the scenarios'
/// fault assumptions, and the argument shows no waiting rule can save
/// unidirectionality.
class SrbRoundProcess final : public sim::Process {
 public:
  std::size_t n = 0;
  std::size_t f = 0;
  broadcast::SrbHub* hub = nullptr;

  bool round_done = false;
  std::set<ProcessId> heard;  // distinct senders of round-1 messages

  void on_start() override {
    endpoint_ = hub->make_endpoint(*this);
    endpoint_->set_deliver([this](const broadcast::Delivery& d) {
      heard.insert(d.sender);
      if (!round_done && heard.size() >= n - f) {
        round_done = true;
        output("round-done", {});
      }
    });
    endpoint_->broadcast(serde::encode(std::string("round-1")));
  }

  bool received_from(ProcessId p) const { return heard.contains(p); }

 private:
  std::unique_ptr<broadcast::SrbHubEndpoint> endpoint_;
};

/// One scenario execution: which processes crash at time 0, and which
/// directed flows the adversary holds forever.
struct ScenarioSpec {
  std::set<ProcessId> crashed;
  std::vector<std::pair<std::set<ProcessId>, std::set<ProcessId>>> held;
};

struct ScenarioRun {
  std::unique_ptr<sim::World> world;
  std::unique_ptr<broadcast::SrbHub> hub;
  std::vector<SrbRoundProcess*> procs;
};

ScenarioRun run_scenario(std::size_t n, std::size_t f, std::uint64_t seed,
                         const ScenarioSpec& spec) {
  // Delay fixed at 1 tick so that which-messages-are-held is the ONLY
  // difference between scenarios — required for the transcript equality
  // checks to reflect the proof's indistinguishability, not RNG noise.
  auto adversary = std::make_unique<sim::PartitionAdversary>(/*intra max=*/1);
  for (const auto& [from, to] : spec.held) adversary->block(from, to);

  ScenarioRun run;
  run.world = std::make_unique<sim::World>(seed, std::move(adversary));
  run.hub = std::make_unique<broadcast::SrbHub>(*run.world, kSrbCh);
  for (std::size_t i = 0; i < n; ++i) {
    auto& p = run.world->spawn<SrbRoundProcess>();
    p.n = n;
    p.f = f;
    p.hub = run.hub.get();
    run.procs.push_back(&p);
  }
  for (ProcessId c : spec.crashed) run.world->crash(c);
  run.world->start();
  run.world->run_to_quiescence();
  return run;
}

}  // namespace

std::string SrbUniSeparation::describe() const {
  std::ostringstream os;
  os << "rounds_completed=" << rounds_completed
     << " q(1~3)=" << q_cannot_tell_1_from_3
     << " q(2~3)=" << q_cannot_tell_2_from_3
     << " c1(2~3)=" << c1_cannot_tell_2_from_3
     << " c2(1~3)=" << c2_cannot_tell_1_from_3
     << " violation=" << unidirectionality_violated;
  return os.str();
}

SrbUniSeparation run_srb_uni_separation(std::size_t n, std::size_t f,
                                        std::uint64_t seed) {
  UNIDIR_REQUIRE_MSG(n > 2 * f && f > 1,
                     "the separation needs n > 2f and f > 1");
  // Partition: Q = {0..n-f-1}, C1 = {n-f}, C2 = {n-f+1..n-1}.
  std::set<ProcessId> q_set;
  for (std::size_t i = 0; i < n - f; ++i)
    q_set.insert(static_cast<ProcessId>(i));
  const ProcessId c1 = static_cast<ProcessId>(n - f);
  std::set<ProcessId> c2_set;
  for (std::size_t i = n - f + 1; i < n; ++i)
    c2_set.insert(static_cast<ProcessId>(i));
  const ProcessId c2_witness = *c2_set.begin();

  // Scenario 1: C1 crashed; C2 → Q held.
  ScenarioSpec s1;
  s1.crashed = {c1};
  s1.held.push_back({c2_set, q_set});
  // The crashed C1's outgoing flow matches Scenario 3's held flow by
  // construction (it sends nothing at all).

  // Scenario 2: C2 crashed; C1 → Q held.
  ScenarioSpec s2;
  s2.crashed = c2_set;
  s2.held.push_back({{c1}, q_set});

  // Scenario 3: nobody faulty; everything out of C1 and C2 held.
  ScenarioSpec s3;
  s3.held.push_back({{c1}, q_set});
  s3.held.push_back({{c1}, c2_set});
  s3.held.push_back({c2_set, q_set});
  s3.held.push_back({c2_set, {c1}});

  ScenarioRun r1 = run_scenario(n, f, seed, s1);
  ScenarioRun r2 = run_scenario(n, f, seed, s2);
  ScenarioRun r3 = run_scenario(n, f, seed, s3);

  SrbUniSeparation out;

  // Progress: every correct process finished its round in every scenario.
  out.rounds_completed = true;
  auto check_done = [&](const ScenarioRun& r) {
    for (const SrbRoundProcess* p : r.procs)
      if (r.world->correct(p->id()) && !p->round_done)
        out.rounds_completed = false;
  };
  check_done(r1);
  check_done(r2);
  check_done(r3);

  // Indistinguishability via transcript equality.
  out.q_cannot_tell_1_from_3 = true;
  out.q_cannot_tell_2_from_3 = true;
  for (ProcessId q : q_set) {
    if (!r1.world->transcript(q).indistinguishable_from(
            r3.world->transcript(q)))
      out.q_cannot_tell_1_from_3 = false;
    if (!r2.world->transcript(q).indistinguishable_from(
            r3.world->transcript(q)))
      out.q_cannot_tell_2_from_3 = false;
  }
  out.c1_cannot_tell_2_from_3 =
      r2.world->transcript(c1).indistinguishable_from(
          r3.world->transcript(c1));
  out.c2_cannot_tell_1_from_3 = true;
  for (ProcessId c : c2_set)
    if (!r1.world->transcript(c).indistinguishable_from(
            r3.world->transcript(c)))
      out.c2_cannot_tell_1_from_3 = false;

  // The violation in Scenario 3.
  const SrbRoundProcess* p1 = r3.procs[c1];
  const SrbRoundProcess* p2 = r3.procs[c2_witness];
  out.unidirectionality_violated =
      p1->round_done && p2->round_done &&
      !p1->received_from(c2_witness) && !p2->received_from(c1);

  return out;
}

// ---- RB cannot solve very weak agreement (n <= 2f) ------------------------------

namespace {

/// The natural VWA-over-RB protocol: broadcast the input; once values from
/// n−f distinct processes (incl. self) are in, commit the common value if
/// they all agree, ⊥ otherwise.
class RbVwaProcess final : public sim::Process {
 public:
  std::size_t n = 0;
  std::size_t f = 0;
  Bytes input;
  broadcast::SrbHub* hub = nullptr;

  bool committed = false;
  std::optional<Bytes> value;

  void on_start() override {
    endpoint_ = hub->make_endpoint(*this);
    endpoint_->set_deliver([this](const broadcast::Delivery& d) {
      if (committed) return;
      senders_.insert(d.sender);
      values_.insert(d.message);
      if (senders_.size() >= n - f) {
        committed = true;
        value = (values_.size() == 1)
                    ? std::optional<Bytes>(*values_.begin())
                    : std::nullopt;
        output("vwa-commit", value ? *value : bytes_of("<bot>"));
      }
    });
    endpoint_->broadcast(input);
  }

 private:
  std::unique_ptr<broadcast::SrbHubEndpoint> endpoint_;
  std::set<ProcessId> senders_;
  std::set<Bytes> values_;
};

struct VwaRun {
  std::unique_ptr<sim::World> world;
  std::unique_ptr<broadcast::SrbHub> hub;
  std::vector<RbVwaProcess*> procs;
};

VwaRun run_vwa_world(std::size_t n, std::uint64_t seed,
                     const std::set<ProcessId>& crashed, bool partitioned,
                     const std::vector<Bytes>& inputs) {
  auto adversary = std::make_unique<sim::PartitionAdversary>(1);
  if (partitioned) {
    std::set<ProcessId> p_half;
    std::set<ProcessId> q_half;
    for (std::size_t i = 0; i < n / 2; ++i)
      p_half.insert(static_cast<ProcessId>(i));
    for (std::size_t i = n / 2; i < n; ++i)
      q_half.insert(static_cast<ProcessId>(i));
    adversary->block_bidirectional(p_half, q_half);
  }
  VwaRun run;
  run.world = std::make_unique<sim::World>(seed, std::move(adversary));
  run.hub = std::make_unique<broadcast::SrbHub>(*run.world, kSrbCh);
  for (std::size_t i = 0; i < n; ++i) {
    auto& p = run.world->spawn<RbVwaProcess>();
    p.n = n;
    p.f = n / 2;
    p.input = inputs[i];
    p.hub = run.hub.get();
    run.procs.push_back(&p);
  }
  for (ProcessId c : crashed) run.world->crash(c);
  run.world->start();
  run.world->run_to_quiescence();
  return run;
}

}  // namespace

std::string RbVwaImpossibility::describe() const {
  std::ostringstream os;
  os << "terminated=" << all_terminated
     << " p(1~2)=" << p_cannot_tell_1_from_2
     << " p(2~5)=" << p_cannot_tell_2_from_5
     << " q(3~4)=" << q_cannot_tell_3_from_4
     << " q(4~5)=" << q_cannot_tell_4_from_5
     << " violation=" << agreement_violated;
  return os.str();
}

RbVwaImpossibility run_rb_vwa_impossibility(std::size_t n,
                                            std::uint64_t seed) {
  UNIDIR_REQUIRE_MSG(n >= 2 && n % 2 == 0, "needs an even n (f = n/2)");
  std::set<ProcessId> p_half;
  std::set<ProcessId> q_half;
  for (std::size_t i = 0; i < n / 2; ++i)
    p_half.insert(static_cast<ProcessId>(i));
  for (std::size_t i = n / 2; i < n; ++i)
    q_half.insert(static_cast<ProcessId>(i));

  auto inputs = [&](std::string_view p_in, std::string_view q_in) {
    std::vector<Bytes> v;
    for (std::size_t i = 0; i < n; ++i)
      v.push_back(bytes_of(i < n / 2 ? p_in : q_in));
    return v;
  };

  // World 1: Q crashed; all inputs 0.     World 2: all correct, inputs 0,
  // partitioned.                          World 3/4: symmetric with 1.
  // World 5: inputs 0|1, partitioned.
  VwaRun w1 = run_vwa_world(n, seed, q_half, false, inputs("0", "0"));
  VwaRun w2 = run_vwa_world(n, seed, {}, true, inputs("0", "0"));
  VwaRun w3 = run_vwa_world(n, seed, p_half, false, inputs("1", "1"));
  VwaRun w4 = run_vwa_world(n, seed, {}, true, inputs("1", "1"));
  VwaRun w5 = run_vwa_world(n, seed, {}, true, inputs("0", "1"));

  RbVwaImpossibility out;
  out.all_terminated = true;
  for (const VwaRun* w : {&w1, &w2, &w3, &w4, &w5})
    for (const RbVwaProcess* p : w->procs)
      if (w->world->correct(p->id()) && !p->committed)
        out.all_terminated = false;

  out.p_cannot_tell_1_from_2 = true;
  out.p_cannot_tell_2_from_5 = true;
  for (ProcessId p : p_half) {
    if (!w1.world->transcript(p).indistinguishable_from(
            w2.world->transcript(p)))
      out.p_cannot_tell_1_from_2 = false;
    if (!w2.world->transcript(p).indistinguishable_from(
            w5.world->transcript(p)))
      out.p_cannot_tell_2_from_5 = false;
  }
  out.q_cannot_tell_3_from_4 = true;
  out.q_cannot_tell_4_from_5 = true;
  for (ProcessId q : q_half) {
    if (!w3.world->transcript(q).indistinguishable_from(
            w4.world->transcript(q)))
      out.q_cannot_tell_3_from_4 = false;
    if (!w4.world->transcript(q).indistinguishable_from(
            w5.world->transcript(q)))
      out.q_cannot_tell_4_from_5 = false;
  }

  // World 5: P committed 0, Q committed 1 — two non-⊥ values.
  bool p_committed_zero = true;
  bool q_committed_one = true;
  for (ProcessId p : p_half)
    if (w5.procs[p]->value != std::optional<Bytes>(bytes_of("0")))
      p_committed_zero = false;
  for (ProcessId q : q_half)
    if (w5.procs[q]->value != std::optional<Bytes>(bytes_of("1")))
      q_committed_one = false;
  out.agreement_violated = p_committed_zero && q_committed_one;

  return out;
}

}  // namespace unidir::core
