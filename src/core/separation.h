// Executable impossibility proofs.
//
// The paper's negative results are proved by constructing families of
// executions that some process cannot tell apart. This module *runs* those
// constructions in the simulator and checks, mechanically, both halves of
// each argument: (a) the indistinguishability of the constructed
// executions, via transcript comparison, and (b) the property violation
// the indistinguishability forces.
//
//  * run_srb_uni_separation — Section 4.1: SRB cannot implement
//    unidirectionality (n > 2f, f > 1). Three scenarios over a trusted
//    SRB; in Scenario 3 two correct processes complete a round without
//    either hearing the other.
//
//  * run_rb_vwa_impossibility — the classic partition argument: reliable
//    broadcast cannot solve very weak agreement with n <= 2f. Five worlds;
//    in World 5 the two halves commit different non-⊥ values.
#pragma once

#include <optional>
#include <string>

#include "common/types.h"

namespace unidir::core {

/// Result of the SRB ⇏ unidirectionality experiment (E3).
struct SrbUniSeparation {
  // Sanity: every relevant process finished its round in every scenario.
  bool rounds_completed = false;
  // Indistinguishability, exactly as the proof claims:
  bool q_cannot_tell_1_from_3 = false;   // Q's views: Scenario 1 vs 3
  bool q_cannot_tell_2_from_3 = false;   // Q's views: Scenario 2 vs 3
  bool c1_cannot_tell_2_from_3 = false;  // C1's view: Scenario 2 vs 3
  bool c2_cannot_tell_1_from_3 = false;  // C2's view: Scenario 1 vs 3
  // The forced violation: in Scenario 3 both C1 and C2 are correct, both
  // sent, and neither received the other's round message.
  bool unidirectionality_violated = false;

  /// True iff the whole theorem was reproduced.
  bool holds() const {
    return rounds_completed && q_cannot_tell_1_from_3 &&
           q_cannot_tell_2_from_3 && c1_cannot_tell_2_from_3 &&
           c2_cannot_tell_1_from_3 && unidirectionality_violated;
  }
  std::string describe() const;
};

/// Runs the three-scenario construction with |Q| = n−f, |C1| = 1,
/// |C2| = f−1 (the first member of C2 is the witness pair partner).
/// Requires n > 2f and f > 1.
SrbUniSeparation run_srb_uni_separation(std::size_t n, std::size_t f,
                                        std::uint64_t seed);

/// Result of the RB ⇏ very-weak-agreement experiment (E7).
struct RbVwaImpossibility {
  bool all_terminated = false;
  // The proof's chain of indistinguishabilities:
  bool p_cannot_tell_1_from_2 = false;  // P: World 1 (Q crashed) vs 2
  bool p_cannot_tell_2_from_5 = false;  // P: World 2 vs 5
  bool q_cannot_tell_3_from_4 = false;  // Q: World 3 (P crashed) vs 4
  bool q_cannot_tell_4_from_5 = false;  // Q: World 4 vs 5
  // The forced violation: in World 5, P commits 0 and Q commits 1.
  bool agreement_violated = false;

  bool holds() const {
    return all_terminated && p_cannot_tell_1_from_2 &&
           p_cannot_tell_2_from_5 && q_cannot_tell_3_from_4 &&
           q_cannot_tell_4_from_5 && agreement_violated;
  }
  std::string describe() const;
};

/// Runs the five-world construction with two halves of size n/2 each.
/// Requires n even, n >= 2, and models f = n/2.
RbVwaImpossibility run_rb_vwa_impossibility(std::size_t n,
                                            std::uint64_t seed);

}  // namespace unidir::core
