#include "core/classification.h"

#include <memory>
#include <set>
#include <sstream>

#include "agreement/dolev_strong.h"
#include "broadcast/noneq.h"
#include "broadcast/rb_uni_round.h"
#include "broadcast/srb_from_uni.h"
#include "broadcast/srb_hub.h"
#include "core/separation.h"
#include "rounds/checkers.h"
#include "rounds/msg_rounds.h"
#include "rounds/shmem_uni_round.h"
#include "sim/adversaries.h"
#include "trusted/trinc_from_srb.h"
#include "wire/channels.h"

namespace unidir::core {

const char* to_string(PowerClass c) {
  switch (c) {
    case PowerClass::Bidirectional: return "bidirectional";
    case PowerClass::Unidirectional: return "unidirectional";
    case PowerClass::SequencedRb: return "sequenced reliable broadcast";
    case PowerClass::ZeroDirectional: return "zero-directional";
  }
  return "?";
}

std::string mechanisms_of(PowerClass c) {
  switch (c) {
    case PowerClass::Bidirectional:
      return "lock-step synchrony, Δ-synchrony + synced clocks";
    case PowerClass::Unidirectional:
      return "SWMR registers, sticky bits, PEATS (shared memory + ACLs)";
    case PowerClass::SequencedRb:
      return "A2M, TrInc, SGX/TrustZone counters (trusted logs)";
    case PowerClass::ZeroDirectional:
      return "asynchronous message passing";
  }
  return "?";
}

std::string ClassificationEdge::describe() const {
  std::ostringstream os;
  os << to_string(from)
     << (kind == EdgeKind::Implements ? "  --can implement-->  "
                                      : "  --CANNOT implement-->  ")
     << to_string(to);
  return os.str();
}

void ClassificationReport::add(ClassificationEdge edge) {
  edges_.push_back(std::move(edge));
}

bool ClassificationReport::all_experiments_passed() const {
  for (const ClassificationEdge& e : edges_)
    if (e.evidence == Evidence::ExperimentFailed) return false;
  return true;
}

std::string ClassificationReport::render() const {
  std::ostringstream os;
  os << "Figure 1 — classification of non-equivocation mechanisms\n"
     << "(A --> B: A can implement B; =/=> : provable separation)\n"
     << "\n"
     << "    [ synchrony / bidirectional rounds ]\n"
     << "        |            ^\n"
     << "        v            | (strict: strong agreement w/ n<=3f)\n"
     << "    [ shared memory + ACLs == UNIDIRECTIONAL rounds ]\n"
     << "      SWMR registers, sticky bits, PEATS\n"
     << "        |            ^\n"
     << "        v            X  (strict for f>1; f=1,n>=3 closes it)\n"
     << "    [ trusted logs <= SEQUENCED RELIABLE BROADCAST ]\n"
     << "      A2M, TrInc, SGX-style counters\n"
     << "        |\n"
     << "        v\n"
     << "    [ asynchrony / zero-directional ]\n"
     << "\n"
     << "Evidence:\n";
  for (const ClassificationEdge& e : edges_) {
    os << "  " << e.describe() << "\n      ";
    switch (e.evidence) {
      case Evidence::ExperimentPassed:
        os << "[EXPERIMENT PASSED] ";
        break;
      case Evidence::ExperimentFailed:
        os << "[EXPERIMENT **FAILED**] ";
        break;
      case Evidence::Literature:
        os << "[literature] ";
        break;
    }
    os << e.witness << "\n";
  }
  os << "\nOverall: "
     << (all_experiments_passed() ? "all executable edges reproduced"
                                  : "REPRODUCTION FAILURE — see above")
     << "\n";
  return os.str();
}

// ---- the experiments ------------------------------------------------------------

namespace {

constexpr sim::Channel kRoundCh = wire::kClassificationRoundCh;
constexpr sim::Channel kSrbCh = wire::kClassificationSrbCh;
constexpr Time kDelta = 4;

/// E2 — shared memory implements unidirectional rounds.
bool experiment_shmem_uni(std::uint64_t seed, bool quick) {
  const std::size_t n = quick ? 3 : 5;
  const int rounds = quick ? 3 : 6;

  class Runner final : public sim::Process {
   public:
    std::unique_ptr<rounds::ShmemUniRoundDriver> driver;
    int target = 0;
    void on_start() override { go(); }
    void go() {
      if (driver->completed_rounds() >= static_cast<RoundNum>(target)) return;
      driver->start_round(bytes_of("m"),
                          [this](RoundNum, const auto&) { go(); });
    }
  };

  sim::World w(seed, std::make_unique<sim::ImmediateAdversary>());
  shmem::MemoryHost memory(w.simulator(), sim::Rng(seed * 13 + 1),
                           {.max_to_linearize = 4, .max_to_respond = 4});
  rounds::ShmemRoundBoard board(n);
  std::vector<Runner*> runners;
  for (std::size_t i = 0; i < n; ++i) {
    auto& r = w.spawn<Runner>();
    r.driver = std::make_unique<rounds::ShmemUniRoundDriver>(
        memory, board, static_cast<ProcessId>(i));
    r.target = rounds;
    runners.push_back(&r);
  }
  w.start();
  w.run_to_quiescence();
  std::vector<rounds::ProcessHistory> hist;
  for (auto* r : runners) {
    if (r->driver->completed_rounds() != static_cast<RoundNum>(rounds))
      return false;
    hist.push_back(rounds::history_of(r->id(), *r->driver));
  }
  return !rounds::check_unidirectional(hist).has_value();
}

/// E5 — unidirectional rounds implement SRB (Algorithm 1).
bool experiment_uni_srb(std::uint64_t seed, bool quick) {
  const std::size_t n = quick ? 3 : 5;
  const std::size_t t = (n - 1) / 2;

  class Node final : public sim::Process {
   public:
    std::unique_ptr<rounds::RoundDriver> driver;
    std::unique_ptr<broadcast::UniSrbEndpoint> srb;
    std::vector<Bytes> to_broadcast;
    void on_start() override {
      for (auto& m : to_broadcast) srb->broadcast(m);
      srb->start();
    }
  };

  sim::World w(seed, std::make_unique<sim::ImmediateAdversary>());
  shmem::MemoryHost memory(w.simulator(), sim::Rng(seed * 29 + 5));
  rounds::ShmemRoundBoard board(n);
  std::vector<Node*> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    auto& node = w.spawn<Node>();
    node.driver = std::make_unique<rounds::ShmemUniRoundDriver>(
        memory, board, static_cast<ProcessId>(i));
    node.srb = std::make_unique<broadcast::UniSrbEndpoint>(node, *node.driver,
                                                           n, t);
    nodes.push_back(&node);
  }
  nodes[0]->to_broadcast = {bytes_of("a"), bytes_of("b")};
  w.start();
  w.run_to_quiescence();
  std::vector<broadcast::SrbView> views;
  for (auto* node : nodes)
    views.push_back({node->id(), node->srb.get(), node->to_broadcast});
  return !broadcast::check_srb(views).has_value();
}

/// E1 — SRB implements the TrInc interface (Theorem 1).
bool experiment_srb_trinc(std::uint64_t seed) {
  class Host final : public sim::Process {};
  sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, 20));
  broadcast::SrbHub hub(w, kSrbCh);
  std::vector<std::unique_ptr<broadcast::SrbHubEndpoint>> eps;
  std::vector<std::unique_ptr<trusted::TrincFromSrb>> trincs;
  for (int i = 0; i < 4; ++i) {
    auto& host = w.spawn<Host>();
    eps.push_back(hub.make_endpoint(host));
    trincs.push_back(
        std::make_unique<trusted::TrincFromSrb>(*eps.back(), host.id()));
  }
  w.start();
  const auto a = trincs[0]->attest(1, bytes_of("m"));
  if (!a) return false;
  if (trincs[0]->attest(1, bytes_of("m2"))) return false;  // reuse refused
  w.run_to_quiescence();
  for (auto& t : trincs) {
    if (!t->check(*a, 0)) return false;  // property (1)
    trusted::SrbAttestation forged = *a;
    forged.message = bytes_of("forged");
    if (t->check(forged, 0)) return false;  // property (2)
  }
  return true;
}

/// E4 — RB implements unidirectionality when f = 1, n >= 3.
bool experiment_rb_uni_corner(std::uint64_t seed, bool quick) {
  const std::size_t n = quick ? 3 : 4;
  class Runner final : public sim::Process {
   public:
    std::unique_ptr<broadcast::RbUniRoundDriver> driver;
    int target = 0;
    void on_start() override { go(); }
    void go() {
      if (driver->completed_rounds() >= static_cast<RoundNum>(target)) return;
      driver->start_round(bytes_of("m"),
                          [this](RoundNum, const auto&) { go(); });
    }
  };
  auto adversary = std::make_unique<sim::PartitionAdversary>();
  adversary->block_bidirectional({0}, {1});  // the hostile pair
  sim::World w(seed, std::move(adversary));
  broadcast::SrbHub hub(w, kSrbCh);
  std::vector<Runner*> runners;
  for (std::size_t i = 0; i < n; ++i) runners.push_back(&w.spawn<Runner>());
  for (auto* r : runners) {
    r->driver = std::make_unique<broadcast::RbUniRoundDriver>(*r, hub);
    r->target = 3;
  }
  w.start();
  w.run_to_quiescence();
  std::vector<rounds::ProcessHistory> hist;
  for (auto* r : runners) {
    if (r->driver->completed_rounds() != 3u) return false;
    hist.push_back(rounds::history_of(r->id(), *r->driver));
  }
  return !rounds::check_unidirectional(hist).has_value();
}

/// E8 — unidirectional rounds implement non-equivocating broadcast.
bool experiment_noneq(std::uint64_t seed) {
  class Node final : public sim::Process {
   public:
    std::unique_ptr<rounds::DeltaSyncRoundDriver> driver;
    std::unique_ptr<broadcast::NonEqBroadcast> bcast;
    std::optional<Bytes> input;
    void on_start() override { bcast->run(input, nullptr); }
  };
  sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, kDelta));
  std::vector<Node*> nodes;
  for (int i = 0; i < 4; ++i) {
    auto& node = w.spawn<Node>();
    node.driver = std::make_unique<rounds::DeltaSyncRoundDriver>(
        node, kRoundCh, 2 * kDelta);
    node.bcast = std::make_unique<broadcast::NonEqBroadcast>(
        node, *node.driver, /*sender=*/0);
    if (i == 0) node.input = bytes_of("value");
    nodes.push_back(&node);
  }
  w.start();
  w.run_to_quiescence();
  for (auto* node : nodes) {
    if (!node->bcast->committed()) return false;
    if (node->bcast->value() != std::optional<Bytes>(bytes_of("value")))
      return false;
  }
  return true;
}

/// E11 — the bidirectional class's extra power, executed: Dolev–Strong
/// broadcast and strong-validity agreement with n = 2f+1 under lock-step
/// rounds (impossible under unidirectionality for n <= 3f).
bool experiment_bidirectional(std::uint64_t seed) {
  class Node final : public sim::Process {
   public:
    std::unique_ptr<agreement::StrongAgreement> sa;
    Bytes input;
    void on_start() override { sa->run(input, nullptr); }
  };
  constexpr Time kDelta2 = 4;
  sim::World w(seed, std::make_unique<sim::RandomDelayAdversary>(1, kDelta2));
  std::vector<Node*> nodes;
  for (int i = 0; i < 5; ++i) {
    auto& node = w.spawn<Node>();
    agreement::StrongAgreement::Options o;
    o.n = 5;
    o.f = 2;
    o.round_length = kDelta2 + 1;
    node.sa = std::make_unique<agreement::StrongAgreement>(node, o);
    node.input = bytes_of("v");
    nodes.push_back(&node);
  }
  w.crash(3);
  w.crash(4);
  w.start();
  w.run_to_quiescence();
  for (int i = 0; i < 3; ++i) {
    auto* node = nodes[static_cast<std::size_t>(i)];
    if (!node->sa->committed()) return false;
    if (node->sa->value() != bytes_of("v")) return false;
  }
  return true;
}

Evidence verdict(bool passed) {
  return passed ? Evidence::ExperimentPassed : Evidence::ExperimentFailed;
}

}  // namespace

ClassificationReport build_classification_report(std::uint64_t seed,
                                                 bool quick) {
  ClassificationReport report;

  report.add({PowerClass::Unidirectional, PowerClass::SequencedRb,
              EdgeKind::Implements,
              verdict(experiment_uni_srb(seed, quick)),
              "E5: Algorithm 1 (L1/L2 proofs) over shared-memory rounds, "
              "n >= 2t+1; SRB properties checked"});

  report.add({PowerClass::SequencedRb, PowerClass::Unidirectional,
              EdgeKind::Separation,
              verdict(run_srb_uni_separation(quick ? 5 : 7, 2, seed).holds()),
              "E3: 3-scenario partition construction (n > 2f, f > 1); "
              "indistinguishability + violation verified"});

  report.add({PowerClass::SequencedRb, PowerClass::Unidirectional,
              EdgeKind::Separation,
              verdict(run_rb_vwa_impossibility(quick ? 4 : 6, seed).holds()),
              "E7: 5-world argument — RB cannot solve very weak agreement "
              "with n <= 2f, while unidirectionality can with n > f"});

  report.add({PowerClass::SequencedRb, PowerClass::Unidirectional,
              EdgeKind::Implements,
              verdict(experiment_rb_uni_corner(seed, quick)),
              "E4 (corner case f=1, n>=3): two-phase forwarding closes the "
              "separation; unidirectionality checked under pair partition"});

  report.add({PowerClass::SequencedRb, PowerClass::ZeroDirectional,
              EdgeKind::Implements,
              verdict(experiment_srb_trinc(seed)),
              "E1: Theorem 1 — SRB implements the TrInc interface "
              "(both CheckAttestation properties verified)"});

  report.add({PowerClass::Unidirectional, PowerClass::ZeroDirectional,
              EdgeKind::Implements,
              verdict(experiment_shmem_uni(seed, quick) &&
                      experiment_noneq(seed)),
              "E2+E8: shared memory implements unidirectional rounds; those "
              "solve non-equivocating broadcast (n >= f+1) and very weak "
              "agreement (n > f)"});

  report.add({PowerClass::Bidirectional, PowerClass::Unidirectional,
              EdgeKind::Implements, Evidence::Literature,
              "immediate from the definitions (both directions arrive)"});

  report.add({PowerClass::Unidirectional, PowerClass::Bidirectional,
              EdgeKind::Separation,
              verdict(experiment_bidirectional(seed)),
              "E11 (constructive half): Dolev-Strong + strong-validity "
              "agreement at n = 2f+1 RUN under lock-step rounds; the "
              "impossibility half (n <= 3f under unidirectionality) is "
              "from Malkhi et al. 2003"});

  report.add({PowerClass::ZeroDirectional, PowerClass::SequencedRb,
              EdgeKind::Separation, Evidence::Literature,
              "asynchronous message passing solves weak agreement only "
              "with n >= 3f+1 [DLS 1988]; with non-equivocation n >= 2f+1 "
              "suffices [Clement et al. 2012]"});

  return report;
}

}  // namespace unidir::core
