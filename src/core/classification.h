// The paper's contribution: a classification of trusted-hardware
// non-equivocation mechanisms by communication power.
//
//   bidirectional  (lock-step synchrony)
//        ↑ strictly stronger
//   unidirectional (shared-memory mechanisms: SWMR, sticky bits, PEATS)
//        ↑ strictly stronger (except f = 1, n ≥ 3)
//   SRB / trusted logs (A2M, TrInc, SGX-style counters)
//        ↑ stronger
//   zero-directional (plain asynchrony)
//
// This module renders the paper's Figure 1 as a report assembled from
// *executable evidence*: each edge of the diagram is backed by either a
// construction that ran and passed its property checks in this repository,
// a separation experiment whose scenario construction succeeded, or a
// literature citation (for edges the paper itself takes from prior work).
#pragma once

#include <string>
#include <vector>

namespace unidir::core {

/// One node in the classification diagram.
enum class PowerClass : std::uint8_t {
  Bidirectional,    // lock-step synchronous rounds
  Unidirectional,   // shared-memory mechanisms
  SequencedRb,      // SRB / trusted logs (A2M, TrInc, SGX)
  ZeroDirectional,  // asynchronous message passing
};

const char* to_string(PowerClass c);
/// Example mechanisms in each class (the paper's inventory).
std::string mechanisms_of(PowerClass c);

/// The nature of the evidence behind an edge.
enum class EdgeKind : std::uint8_t {
  Implements,  // A can implement B (a construction exists)
  Separation,  // A cannot implement B (a scenario family exists)
};

enum class Evidence : std::uint8_t {
  ExperimentPassed,  // ran in this repository and held
  ExperimentFailed,  // ran and did NOT hold (a reproduction failure!)
  Literature,        // cited by the paper; not re-proved here
};

struct ClassificationEdge {
  PowerClass from = PowerClass::ZeroDirectional;
  PowerClass to = PowerClass::ZeroDirectional;
  EdgeKind kind = EdgeKind::Implements;
  Evidence evidence = Evidence::Literature;
  std::string witness;  // which experiment/bench/test backs it

  std::string describe() const;
};

class ClassificationReport {
 public:
  void add(ClassificationEdge edge);

  const std::vector<ClassificationEdge>& edges() const { return edges_; }
  bool all_experiments_passed() const;

  /// Renders the Figure-1 diagram plus the evidence table.
  std::string render() const;

 private:
  std::vector<ClassificationEdge> edges_;
};

/// Runs every experiment this repository implements and assembles the
/// full report — the programmatic regeneration of Figure 1. `quick`
/// shrinks the parameter sweeps (used by tests; benches run full size).
ClassificationReport build_classification_report(std::uint64_t seed,
                                                 bool quick = false);

}  // namespace unidir::core
