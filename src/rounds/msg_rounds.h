// Message-passing round drivers: zero-directional (asynchrony),
// bidirectional (lock-step synchrony) and Δ-synchronous (tunable).
//
// These drivers realize the "classical communication models" column of the
// paper's classification. Each sends its round message over the ordinary
// network and differs only in *when it dares end the round*:
//
//   AsyncZeroRoundDriver  — ends on receiving round-r messages from n−f
//                           processes. Safe under pure asynchrony, but a
//                           pair of correct processes may both miss each
//                           other (zero-directionality).
//   LockstepBiRoundDriver — rounds are global windows of length T; assuming
//                           the network delivers within Δ ≤ T, both
//                           directions of every correct pair arrive in the
//                           window (bidirectionality).
//   DeltaSyncRoundDriver  — sends, then waits a fixed `wait` ticks. With
//                           message delay bounded by Δ: wait ≥ 2Δ yields
//                           unidirectionality (without clock sync!), while
//                           wait < Δ can yield nothing — the knob the
//                           paper's Δ-synchrony discussion turns.
#pragma once

#include <map>

#include "rounds/round_driver.h"
#include "sim/world.h"
#include "wire/router.h"

namespace unidir::rounds {

/// Shared machinery: tag messages with round numbers, buffer arrivals
/// (including early arrivals for future rounds), keep the first message per
/// sender per round (a Byzantine sender cannot stuff a round).
class MsgRoundDriverBase : public RoundDriver {
 public:
  MsgRoundDriverBase(sim::Process& host, sim::Channel channel);

 protected:
  void send_round_msg(RoundNum round, const Bytes& message);
  /// Round-r messages that have arrived so far (never includes self).
  std::vector<Received> collect(RoundNum round) const;
  std::size_t distinct_senders(RoundNum round) const;

  /// Hook invoked after a round message is buffered.
  virtual void on_round_msg(RoundNum round, ProcessId from) {
    (void)round;
    (void)from;
  }

  sim::Process& host_;

 private:
  void handle(ProcessId from, RoundMsg msg);

  wire::Router router_;
  std::map<RoundNum, std::map<ProcessId, Bytes>> arrived_;
};

class AsyncZeroRoundDriver final : public MsgRoundDriverBase {
 public:
  /// `n` processes, at most `f` faulty: a round ends once round-r messages
  /// from n−f distinct processes (counting self) are in.
  AsyncZeroRoundDriver(sim::Process& host, sim::Channel channel, std::size_t n,
                       std::size_t f);

  void start_round(Bytes message, Callback done) override;

 private:
  void on_round_msg(RoundNum round, ProcessId from) override;
  void maybe_finish();

  std::size_t n_;
  std::size_t f_;
  RoundNum active_round_ = 0;
  Callback done_;
};

class LockstepBiRoundDriver final : public MsgRoundDriverBase {
 public:
  /// Round r occupies the global window [(r−1)·T, r·T). Correctness of the
  /// bidirectional guarantee requires the network to deliver within T.
  LockstepBiRoundDriver(sim::Process& host, sim::Channel channel,
                        Time round_length);

  void start_round(Bytes message, Callback done) override;

 private:
  Time round_length_;
};

class DeltaSyncRoundDriver final : public MsgRoundDriverBase {
 public:
  DeltaSyncRoundDriver(sim::Process& host, sim::Channel channel, Time wait);

  void start_round(Bytes message, Callback done) override;

 private:
  Time wait_;
};

}  // namespace unidir::rounds
