// Unidirectional rounds from shared memory — the paper's §3.2 claim.
//
// The protocol (introduced by Aguilera et al. for SWMR registers, stated in
// the paper for any single-modifier/all-reader object):
//
//   In round r, process p_i:
//     appends (r, m) to its own object o_i,
//     then reads objects o_1..o_n;
//     it "receives" (r, m') from p_j if o_j's content includes (r, m').
//
// Unidirectionality holds because whichever of p_i, p_j linearizes its
// append *first* is guaranteed to be seen by the other's subsequent reads:
// an append happens-before its own process's reads, so two appends cannot
// both miss each other.
#pragma once

#include <memory>
#include <vector>

#include "rounds/round_driver.h"
#include "shmem/memory_host.h"
#include "shmem/registers.h"

namespace unidir::rounds {

/// The board of per-process SWMR append logs o_1..o_n that a group of
/// ShmemUniRoundDriver instances shares. Entry = (round, message).
class ShmemRoundBoard {
 public:
  explicit ShmemRoundBoard(std::size_t n);

  std::size_t size() const { return logs_.size(); }
  shmem::SwmrLog<RoundMsg>& log(ProcessId owner);
  const shmem::SwmrLog<RoundMsg>& log(ProcessId owner) const;

 private:
  std::vector<std::unique_ptr<shmem::SwmrLog<RoundMsg>>> logs_;
};

class ShmemUniRoundDriver final : public RoundDriver {
 public:
  /// `self` must be a valid index into `board`.
  ShmemUniRoundDriver(shmem::MemoryHost& memory, ShmemRoundBoard& board,
                      ProcessId self);

  void start_round(Bytes message, Callback done) override;

  /// If true (default), each round re-reads every log in full, as in the
  /// paper's protocol. If false, reads only the suffix appended since this
  /// driver last read each log — the ablation benchmarked in
  /// bench_rounds (correct because logs are append-only).
  void set_full_reads(bool full) { full_reads_ = full; }

 private:
  void read_all(RoundNum round, std::shared_ptr<Callback> done);

  shmem::MemoryHost& memory_;
  ShmemRoundBoard& board_;
  ProcessId self_;
  bool full_reads_ = true;
  std::vector<std::size_t> read_offsets_;  // per-log cursor for incremental mode
  std::vector<std::size_t> fresh_offsets_;  // per-log cursor for take_fresh()
  std::vector<std::vector<RoundMsg>> seen_;  // all entries ever read, per log
};

}  // namespace unidir::rounds
