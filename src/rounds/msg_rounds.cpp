#include "rounds/msg_rounds.h"

namespace unidir::rounds {

MsgRoundDriverBase::MsgRoundDriverBase(sim::Process& host,
                                       sim::Channel channel)
    : host_(host), router_(host, channel) {
  router_.on<RoundMsg>(
      [this](ProcessId from, RoundMsg msg) { handle(from, std::move(msg)); });
}

void MsgRoundDriverBase::handle(ProcessId from, RoundMsg msg) {
  auto& per_sender = arrived_[msg.round];
  // Keep the first message per (round, sender).
  auto [it, inserted] = per_sender.emplace(from, std::move(msg.message));
  if (!inserted) return;
  add_fresh(from, it->second);
  on_round_msg(msg.round, from);
  notify_activity();
}

void MsgRoundDriverBase::send_round_msg(RoundNum round, const Bytes& message) {
  router_.broadcast(RoundMsg{round, message});
}

std::vector<Received> MsgRoundDriverBase::collect(RoundNum round) const {
  std::vector<Received> out;
  auto it = arrived_.find(round);
  if (it == arrived_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [from, message] : it->second)
    out.push_back({from, message});
  return out;
}

std::size_t MsgRoundDriverBase::distinct_senders(RoundNum round) const {
  auto it = arrived_.find(round);
  return it == arrived_.end() ? 0 : it->second.size();
}

// ---- zero-directional --------------------------------------------------------

AsyncZeroRoundDriver::AsyncZeroRoundDriver(sim::Process& host,
                                           sim::Channel channel, std::size_t n,
                                           std::size_t f)
    : MsgRoundDriverBase(host, channel), n_(n), f_(f) {
  UNIDIR_REQUIRE(n >= 1 && f < n);
}

void AsyncZeroRoundDriver::start_round(Bytes message, Callback done) {
  active_round_ = begin(message);
  done_ = std::move(done);
  send_round_msg(active_round_, message);
  maybe_finish();  // early arrivals may already satisfy the quorum
}

void AsyncZeroRoundDriver::on_round_msg(RoundNum round, ProcessId from) {
  (void)from;
  if (round == active_round_) maybe_finish();
}

void AsyncZeroRoundDriver::maybe_finish() {
  if (active_round_ == 0 || !round_in_flight()) return;
  // Count self: the driver's own message trivially "arrives" at itself.
  if (distinct_senders(active_round_) + 1 < n_ - f_) return;
  const RoundNum round = active_round_;
  active_round_ = 0;
  Callback done = std::move(done_);
  done_ = nullptr;
  finish(collect(round), done);
}

// ---- bidirectional (lock-step) ---------------------------------------------

LockstepBiRoundDriver::LockstepBiRoundDriver(sim::Process& host,
                                             sim::Channel channel,
                                             Time round_length)
    : MsgRoundDriverBase(host, channel), round_length_(round_length) {
  UNIDIR_REQUIRE(round_length >= 1);
}

void LockstepBiRoundDriver::start_round(Bytes message, Callback done) {
  const RoundNum round = begin(message);
  const Time now = host_.world().now();
  const Time window_start = (round - 1) * round_length_;
  const Time window_end = round * round_length_;
  UNIDIR_REQUIRE_MSG(now <= window_start,
                     "lock-step round started after its window opened");
  // Timers route through the host so they are suppressed on crash. Message
  // delivery must take < round_length ticks for the bidirectional
  // guarantee: a message sent at window start then lands strictly before
  // the window-end event.
  host_.set_timer(window_start - now,
                  [this, round, message]() { send_round_msg(round, message); });
  host_.set_timer(window_end - now, [this, round, done = std::move(done)]() {
    finish(collect(round), done);
  });
}

// ---- Δ-synchronous -----------------------------------------------------------

DeltaSyncRoundDriver::DeltaSyncRoundDriver(sim::Process& host,
                                           sim::Channel channel, Time wait)
    : MsgRoundDriverBase(host, channel), wait_(wait) {
  UNIDIR_REQUIRE(wait >= 1);
}

void DeltaSyncRoundDriver::start_round(Bytes message, Callback done) {
  const RoundNum round = begin(message);
  send_round_msg(round, message);
  host_.set_timer(wait_, [this, round, done = std::move(done)]() {
    finish(collect(round), done);
  });
}

}  // namespace unidir::rounds
