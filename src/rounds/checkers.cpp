#include "rounds/checkers.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace unidir::rounds {

std::string DirectionalityViolation::describe() const {
  std::ostringstream os;
  os << "round " << round << ": neither p" << p << " nor p" << q
     << " received the other's message";
  return os.str();
}

bool received_from(const ProcessHistory& p, ProcessId q, RoundNum round) {
  UNIDIR_REQUIRE(p.history != nullptr);
  UNIDIR_REQUIRE(round >= 1);
  if (round > p.history->size()) return false;
  const RoundRecord& rec = (*p.history)[round - 1];
  UNIDIR_CHECK(rec.round == round);
  return std::any_of(rec.received.begin(), rec.received.end(),
                     [q](const Received& r) { return r.from == q; });
}

ProcessHistory history_of(ProcessId id, const RoundDriver& driver) {
  return ProcessHistory{id, &driver.history()};
}

namespace {

template <typename Pred>
std::optional<DirectionalityViolation> check_pairs(
    const std::vector<ProcessHistory>& correct, Pred ok) {
  for (std::size_t i = 0; i < correct.size(); ++i) {
    for (std::size_t j = i + 1; j < correct.size(); ++j) {
      const ProcessHistory& p = correct[i];
      const ProcessHistory& q = correct[j];
      const RoundNum common = static_cast<RoundNum>(
          std::min(p.history->size(), q.history->size()));
      for (RoundNum r = 1; r <= common; ++r) {
        if (!ok(p, q, r)) return DirectionalityViolation{p.id, q.id, r};
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<DirectionalityViolation> check_unidirectional(
    const std::vector<ProcessHistory>& correct) {
  return check_pairs(correct,
                     [](const ProcessHistory& p, const ProcessHistory& q,
                        RoundNum r) {
                       return received_from(p, q.id, r) ||
                              received_from(q, p.id, r);
                     });
}

std::optional<DirectionalityViolation> check_bidirectional(
    const std::vector<ProcessHistory>& correct) {
  return check_pairs(correct,
                     [](const ProcessHistory& p, const ProcessHistory& q,
                        RoundNum r) {
                       return received_from(p, q.id, r) &&
                              received_from(q, p.id, r);
                     });
}

}  // namespace unidir::rounds
