#include "rounds/object_uni_round.h"

#include <string>

namespace unidir::rounds {

namespace {

Bytes owner_tag(ProcessId owner) {
  return bytes_of(std::to_string(owner));
}

Bytes index_tag(std::size_t index) {
  return bytes_of(std::to_string(index));
}

/// Policy: out only with the caller's own id in field 0; reads for all;
/// no removal — the tuple-space rendering of a single-writer ACL.
shmem::PeatsPolicy round_policy() {
  return [](const shmem::PeatsRequest& req, const shmem::Peats&) {
    switch (req.op) {
      case shmem::PeatsOp::Rdp:
        return true;
      case shmem::PeatsOp::Out:
        return req.tuple != nullptr && req.tuple->size() == 3 &&
               (*req.tuple)[0] == owner_tag(req.caller);
      case shmem::PeatsOp::Inp:
      case shmem::PeatsOp::Cas:
        return false;
    }
    return false;
  };
}

}  // namespace

PeatsRoundBoard::PeatsRoundBoard(std::size_t n)
    : n_(n), space_(round_policy()) {
  UNIDIR_REQUIRE(n >= 1);
}

bool PeatsRoundBoard::publish(ProcessId owner, const RoundMsg& m) {
  std::size_t& count = published_[owner];
  shmem::Tuple tuple = {owner_tag(owner), index_tag(count),
                        serde::encode(m)};
  if (!space_.out(owner, std::move(tuple))) return false;
  ++count;
  return true;
}

std::vector<RoundMsg> PeatsRoundBoard::read_from(ProcessId reader,
                                                 ProcessId owner,
                                                 std::size_t from) const {
  shmem::TupleTemplate pattern = shmem::TupleTemplate::tagged(
      owner_tag(owner), 3);
  std::vector<RoundMsg> out;
  for (const shmem::Tuple& t : space_.rdp_all(reader, pattern)) {
    // Tuples carry their per-owner index in field 1; skip already-read ones.
    std::size_t index = 0;
    try {
      index = std::stoul(string_of(t[1]));
    } catch (const std::exception&) {
      continue;  // stay total on malformed fields
    }
    if (index < from) continue;
    try {
      out.push_back(serde::decode<RoundMsg>(t[2]));
    } catch (const serde::DecodeError&) {
      // Unreachable for tuples our policy admitted, but stay total.
    }
  }
  return out;
}

bool StickyRoundBoard::publish(ProcessId owner, const RoundMsg& m) {
  std::size_t& count = published_[owner];
  const auto key = std::make_pair(owner, count);
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    shmem::AccessControlList acl;
    acl.allow("write", owner);
    acl.allow_all("read");
    it = cells_
             .emplace(key, std::make_unique<shmem::StickyRegister<RoundMsg>>(
                               acl))
             .first;
  }
  if (it->second->write(owner, m) != shmem::WriteStatus::Ok) return false;
  ++count;
  return true;
}

std::vector<RoundMsg> StickyRoundBoard::read_from(ProcessId reader,
                                                  ProcessId owner,
                                                  std::size_t from) const {
  std::vector<RoundMsg> out;
  for (std::size_t i = from;; ++i) {
    auto it = cells_.find({owner, i});
    if (it == cells_.end()) break;
    const auto value = it->second->read(reader);
    if (!value) break;  // first unset cell ends the scan
    out.push_back(*value);
  }
  return out;
}

}  // namespace unidir::rounds
