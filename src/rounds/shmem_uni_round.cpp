#include "rounds/shmem_uni_round.h"

#include <algorithm>

namespace unidir::rounds {

ShmemRoundBoard::ShmemRoundBoard(std::size_t n) {
  UNIDIR_REQUIRE(n >= 1);
  logs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    logs_.push_back(std::make_unique<shmem::SwmrLog<RoundMsg>>(
        static_cast<ProcessId>(i)));
}

shmem::SwmrLog<RoundMsg>& ShmemRoundBoard::log(ProcessId owner) {
  UNIDIR_REQUIRE(owner < logs_.size());
  return *logs_[owner];
}

const shmem::SwmrLog<RoundMsg>& ShmemRoundBoard::log(ProcessId owner) const {
  UNIDIR_REQUIRE(owner < logs_.size());
  return *logs_[owner];
}

ShmemUniRoundDriver::ShmemUniRoundDriver(shmem::MemoryHost& memory,
                                         ShmemRoundBoard& board,
                                         ProcessId self)
    : memory_(memory),
      board_(board),
      self_(self),
      read_offsets_(board.size(), 0),
      fresh_offsets_(board.size(), 0),
      seen_(board.size()) {
  UNIDIR_REQUIRE(self < board.size());
}

void ShmemUniRoundDriver::start_round(Bytes message, Callback done) {
  const RoundNum round = begin(message);
  auto done_ptr = std::make_shared<Callback>(std::move(done));
  // Step 1: append (r, m) to own object. Reads are issued only after the
  // append's response, so the append is linearized before every read —
  // the ordering the unidirectionality proof depends on.
  memory_.invoke<shmem::WriteStatus>(
      self_,
      [this, round, message]() {
        return board_.log(self_).append(self_, RoundMsg{round, message});
      },
      [this, round, done_ptr](shmem::WriteStatus status) {
        UNIDIR_CHECK_MSG(status == shmem::WriteStatus::Ok,
                         "own-log append cannot be denied");
        read_all(round, done_ptr);
      });
}

void ShmemUniRoundDriver::read_all(RoundNum round,
                                   std::shared_ptr<Callback> done) {
  // Step 2: read o_1..o_n (all invoked concurrently; the round ends when
  // every read has responded).
  const std::size_t n = board_.size();
  auto pending = std::make_shared<std::size_t>(n);
  for (ProcessId j = 0; j < n; ++j) {
    const std::size_t offset = full_reads_ ? 0 : read_offsets_[j];
    memory_.invoke<std::vector<RoundMsg>>(
        self_,
        [this, j, offset]() { return board_.log(j).read_from(self_, offset); },
        [this, j, offset, round, pending, done](std::vector<RoundMsg> entries) {
          // Merge into the cumulative view of log j.
          if (full_reads_) {
            if (entries.size() > seen_[j].size()) seen_[j] = std::move(entries);
          } else {
            read_offsets_[j] = offset + entries.size();
            for (auto& e : entries) seen_[j].push_back(std::move(e));
          }
          if (--*pending > 0) return;
          // All reads responded. Report every entry not yet reported as
          // "fresh" (reads return the full past, not just this round)…
          for (ProcessId k = 0; k < board_.size(); ++k) {
            if (k == self_) {
              fresh_offsets_[k] = seen_[k].size();
              continue;
            }
            for (std::size_t i = fresh_offsets_[k]; i < seen_[k].size(); ++i)
              add_fresh(k, seen_[k][i].message);
            fresh_offsets_[k] = seen_[k].size();
          }
          // …and collect the round-r messages, which define the round's
          // directionality-relevant receptions.
          std::vector<Received> received;
          for (ProcessId k = 0; k < board_.size(); ++k) {
            if (k == self_) continue;
            for (const RoundMsg& e : seen_[k])
              if (e.round == round) received.push_back({k, e.message});
          }
          finish(std::move(received), *done);
        });
  }
}

}  // namespace unidir::rounds
