// Unidirectional rounds from OTHER shared-memory objects — the paper's
// claim in full generality: "all shared memory objects that have some
// modifying operation and some read operation, along with ACLs, can
// provide this setting. This includes SWMR registers, PEATS, and all
// objects considered in [Malkhi et al.]".
//
// ObjectUniRoundDriver is the write-own-then-read-all protocol over any
// board satisfying the small Board concept below; PeatsRoundBoard backs it
// with one policy-guarded tuple space, StickyRoundBoard with a family of
// write-once registers. Both reuse the exact proof obligation: a process's
// publish linearizes before its scans, so two publishes cannot both go
// unseen.
#pragma once

#include <map>
#include <memory>

#include "rounds/round_driver.h"
#include "shmem/memory_host.h"
#include "shmem/peats.h"
#include "shmem/registers.h"

namespace unidir::rounds {

/// Board concept (duck-typed):
///   std::size_t size() const;
///   bool publish(ProcessId owner, const RoundMsg& m);       // modify op
///   std::vector<RoundMsg> read_from(ProcessId reader,
///                                   ProcessId owner,
///                                   std::size_t from) const; // read op
/// publish must be rejected (return false) for non-owners — the ACL.

/// A tuple space shared by all n processes. Tuples are
/// (owner, index, message); the policy admits an out only when the first
/// field names the caller — PEATS's state-aware guard doing ACL duty.
class PeatsRoundBoard {
 public:
  explicit PeatsRoundBoard(std::size_t n);

  std::size_t size() const { return n_; }
  bool publish(ProcessId owner, const RoundMsg& m);
  std::vector<RoundMsg> read_from(ProcessId reader, ProcessId owner,
                                  std::size_t from) const;

 private:
  std::size_t n_;
  shmem::Peats space_;
  std::map<ProcessId, std::size_t> published_;  // per-owner entry count
};

/// One write-once register per (owner, index): append-by-allocation. The
/// owner's k-th message goes into its k-th sticky register; readers scan
/// indices until the first unset one.
class StickyRoundBoard {
 public:
  explicit StickyRoundBoard(std::size_t n) : n_(n) {}

  std::size_t size() const { return n_; }
  bool publish(ProcessId owner, const RoundMsg& m);
  std::vector<RoundMsg> read_from(ProcessId reader, ProcessId owner,
                                  std::size_t from) const;

 private:
  std::size_t n_;
  std::map<std::pair<ProcessId, std::size_t>,
           std::unique_ptr<shmem::StickyRegister<RoundMsg>>>
      cells_;
  std::map<ProcessId, std::size_t> published_;
};

/// The §3.2 protocol over any Board: publish (r, m), read everything,
/// receive the round-r entries. Identical structure to
/// ShmemUniRoundDriver, generic in the object type.
template <typename Board>
class ObjectUniRoundDriver final : public RoundDriver {
 public:
  ObjectUniRoundDriver(shmem::MemoryHost& memory, Board& board,
                       ProcessId self)
      : memory_(memory),
        board_(board),
        self_(self),
        read_cursor_(board.size(), 0),
        seen_(board.size()) {
    UNIDIR_REQUIRE(self < board.size());
  }

  void start_round(Bytes message, Callback done) override {
    const RoundNum round = begin(message);
    auto done_ptr = std::make_shared<Callback>(std::move(done));
    memory_.invoke<bool>(
        self_,
        [this, round, message]() {
          return board_.publish(self_, RoundMsg{round, message});
        },
        [this, round, done_ptr](bool ok) {
          UNIDIR_CHECK_MSG(ok, "own publish cannot be denied");
          read_all(round, done_ptr);
        });
  }

 private:
  void read_all(RoundNum round, std::shared_ptr<Callback> done) {
    const std::size_t n = board_.size();
    auto pending = std::make_shared<std::size_t>(n);
    for (ProcessId j = 0; j < n; ++j) {
      const std::size_t offset = read_cursor_[j];
      memory_.invoke<std::vector<RoundMsg>>(
          self_,
          [this, j, offset]() { return board_.read_from(self_, j, offset); },
          [this, j, offset, round, pending,
           done](std::vector<RoundMsg> entries) {
            read_cursor_[j] = offset + entries.size();
            for (auto& e : entries) {
              if (j != self_) add_fresh(j, e.message);
              seen_[j].push_back(std::move(e));
            }
            if (--*pending > 0) return;
            std::vector<Received> received;
            for (ProcessId k = 0; k < board_.size(); ++k) {
              if (k == self_) continue;
              for (const RoundMsg& e : seen_[k])
                if (e.round == round) received.push_back({k, e.message});
            }
            finish(std::move(received), *done);
          });
    }
  }

  shmem::MemoryHost& memory_;
  Board& board_;
  ProcessId self_;
  std::vector<std::size_t> read_cursor_;
  std::vector<std::vector<RoundMsg>> seen_;
};

using PeatsUniRoundDriver = ObjectUniRoundDriver<PeatsRoundBoard>;
using StickyUniRoundDriver = ObjectUniRoundDriver<StickyRoundBoard>;

}  // namespace unidir::rounds
