// The round abstraction the paper's classification is built on.
//
// A round driver lets its process repeatedly execute *rounds*: send one
// message, then learn (asynchronously) which round-r messages from other
// processes arrived before the round ended. Rounds are per-process — an
// asynchronous process may be many rounds ahead of a slow peer. The
// *directionality* of a system is a property of what its round drivers can
// guarantee for pairs of correct processes in the same round number r:
//
//   zero-directional: possibly neither of p,q receives the other's round-r
//                     message before its next round (asynchrony).
//   unidirectional:   at least one of p,q receives the other's round-r
//                     message before its next round (shared memory).
//   bidirectional:    both receive each other's round-r messages
//                     (lock-step synchrony).
//
// Every driver records its full round history, which the checkers in
// checkers.h use to verify these properties mechanically over executions.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "common/serde.h"
#include "common/types.h"
#include "wire/message.h"

namespace unidir::rounds {

/// A message received within a round.
struct Received {
  ProcessId from = kNoProcess;
  Bytes message;

  bool operator==(const Received&) const = default;
};

/// What one completed round looked like from the inside.
struct RoundRecord {
  RoundNum round = 0;
  Bytes sent;
  std::vector<Received> received;  // round-`round` messages seen by round end
};

class RoundDriver {
 public:
  /// Invoked when the round completes, with the round number and everything
  /// received in it. The callback may immediately start the next round.
  using Callback = std::function<void(RoundNum, const std::vector<Received>&)>;

  virtual ~RoundDriver() = default;
  RoundDriver() = default;
  RoundDriver(const RoundDriver&) = delete;
  RoundDriver& operator=(const RoundDriver&) = delete;

  /// Starts round `completed_rounds()+1`, sending `message`. A driver runs
  /// one round at a time; starting a round while one is in flight throws.
  virtual void start_round(Bytes message, Callback done) = 0;

  RoundNum completed_rounds() const {
    return static_cast<RoundNum>(history_.size());
  }
  bool round_in_flight() const { return in_flight_; }

  /// Optional: invoked when round traffic arrives while NO round is in
  /// flight. Message-passing drivers support this so a client that went
  /// idle can resume rounding when peers are still active. Shared-memory
  /// drivers never fire it — registers cannot push; a shared-memory
  /// client relies on the board's persistence instead.
  void set_activity_listener(std::function<void()> fn) {
    activity_listener_ = std::move(fn);
  }

  /// Completed rounds, oldest first. history()[r-1] is round r.
  const std::vector<RoundRecord>& history() const { return history_; }

  /// All messages newly observed since the last call, regardless of the
  /// round number they were tagged with (never includes self).
  ///
  /// Round-scoped reception (`history()[r].received`) is what the
  /// *directionality properties* are defined over; but algorithms built on
  /// rounds (e.g. SRB from unidirectional rounds) receive "upon receiving"
  /// — in the register model, a read returns everything ever written, not
  /// just same-round entries. take_fresh() is that firehose.
  std::vector<Received> take_fresh() { return std::exchange(fresh_, {}); }

 protected:
  /// Subclass bookkeeping for start_round: validates single-flight and
  /// returns the new round number.
  RoundNum begin(const Bytes& message);
  /// Subclass bookkeeping for completion: records history and fires `done`.
  void finish(std::vector<Received> received, const Callback& done);

  /// Subclasses call this when traffic arrives outside an active round.
  void notify_activity() {
    if (!in_flight_ && activity_listener_) activity_listener_();
  }

  /// Subclasses feed every newly observed message here (any round tag).
  void add_fresh(ProcessId from, Bytes message) {
    fresh_.push_back({from, std::move(message)});
  }

 private:
  std::vector<Received> fresh_;
  std::function<void()> activity_listener_;
  bool in_flight_ = false;
  Bytes current_sent_;
  std::vector<RoundRecord> history_;
};

/// Wire format shared by the message-passing round drivers.
struct RoundMsg {
  static constexpr wire::MsgDesc kDesc{1, "round-msg"};

  RoundNum round = 0;
  Bytes message;

  void encode(serde::Writer& w) const {
    w.uvarint(round);
    w.bytes(message);
  }
  static RoundMsg decode(serde::Reader& r) {
    RoundMsg m;
    m.round = r.uvarint();
    m.message = r.bytes();
    return m;
  }
};

}  // namespace unidir::rounds
