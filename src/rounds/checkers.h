// Mechanical checkers for the three directionality properties.
//
// Given the recorded round histories of a set of correct processes, these
// validate the pairwise definitions from the paper over a concrete
// execution. A returned violation is a *witness*: the pair and round where
// the property failed, suitable for test diagnostics and for the
// separation experiments (where a violation is the expected outcome).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rounds/round_driver.h"

namespace unidir::rounds {

struct DirectionalityViolation {
  ProcessId p = kNoProcess;
  ProcessId q = kNoProcess;
  RoundNum round = 0;

  std::string describe() const;
};

/// One process's contribution to a check: its id and its round history.
struct ProcessHistory {
  ProcessId id = kNoProcess;
  const std::vector<RoundRecord>* history = nullptr;
};

/// Unidirectionality: for every pair (p, q) and round r both completed,
/// p received q's round-r message or q received p's. Returns the first
/// violation, or nullopt if the property held throughout.
std::optional<DirectionalityViolation> check_unidirectional(
    const std::vector<ProcessHistory>& correct);

/// Bidirectionality: for every pair and common round, BOTH directions
/// were received.
std::optional<DirectionalityViolation> check_bidirectional(
    const std::vector<ProcessHistory>& correct);

/// True if round r of `p` received a round-r message from `q`.
bool received_from(const ProcessHistory& p, ProcessId q, RoundNum round);

/// Convenience: build ProcessHistory entries from drivers.
ProcessHistory history_of(ProcessId id, const RoundDriver& driver);

}  // namespace unidir::rounds
