#include "rounds/round_driver.h"

namespace unidir::rounds {

RoundNum RoundDriver::begin(const Bytes& message) {
  UNIDIR_REQUIRE_MSG(!in_flight_, "round already in flight");
  in_flight_ = true;
  current_sent_ = message;
  return completed_rounds() + 1;
}

void RoundDriver::finish(std::vector<Received> received, const Callback& done) {
  UNIDIR_CHECK_MSG(in_flight_, "finish() without a round in flight");
  in_flight_ = false;
  RoundRecord rec;
  rec.round = completed_rounds() + 1;
  rec.sent = std::move(current_sent_);
  rec.received = std::move(received);
  history_.push_back(rec);
  if (done) done(rec.round, history_.back().received);
}

}  // namespace unidir::rounds
