#include "trusted/sgx.h"

#include "common/check.h"
#include "common/serde.h"

namespace unidir::trusted {

Bytes SealedOutput::report_bytes(const Bytes& output) {
  serde::Writer w;
  w.str("sgx-report");
  w.bytes(output);
  return w.take();
}

SgxEnclave::SgxEnclave(crypto::KeyRegistry& keys, Program program,
                       Bytes initial_state)
    : program_(std::move(program)),
      state_(std::move(initial_state)),
      key_(keys.generate_key()) {
  UNIDIR_REQUIRE(program_ != nullptr);
}

SealedOutput SgxEnclave::call(const Bytes& input) {
  SealedOutput out;
  out.output = program_(state_, input);
  out.sig = key_.sign(SealedOutput::report_bytes(out.output));
  return out;
}

bool SgxEnclave::verify(const crypto::KeyRegistry& keys, crypto::KeyId key,
                        const SealedOutput& out) {
  if (out.sig.key != key) return false;
  return keys.verify(out.sig, SealedOutput::report_bytes(out.output));
}

}  // namespace unidir::trusted
