// A2M — attested append-only memory (Chun et al., SOSP'07), per the
// interface in the paper's Algorithm "Trusted Hardware Functionality":
//
//   CreateLog()        → id           (fresh trusted log)
//   Append(id, x)                     (extend log id with x; past entries
//                                      can never be modified)
//   Lookup(id, s, z)   → attestation  (signed ⟨lookup, id, s, log[id][s], z⟩)
//   End(id, z)         → attestation  (signed ⟨end, id, c_id, last, z⟩)
//
// The nonce z lets a remote challenger confirm freshness. Non-equivocation:
// the device assigns consecutive sequence numbers at append time, so there
// is exactly one attested value per (log, seq).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/serde.h"
#include "common/types.h"
#include "crypto/signature.h"

namespace unidir::trusted {

using LogId = std::uint64_t;

struct A2mAttestation {
  enum class Kind : std::uint8_t { Lookup = 1, End = 2 };

  ProcessId owner = kNoProcess;  // whose device produced it
  Kind kind = Kind::Lookup;
  LogId log = 0;
  SeqNum seq = 0;  // index attested; for End, the current log length
  Bytes value;
  Bytes nonce;
  crypto::Signature device_sig;

  bool operator==(const A2mAttestation&) const = default;

  Bytes signing_bytes() const;
  void encode(serde::Writer& w) const;
  static A2mAttestation decode(serde::Reader& r);
};

class A2m;

/// Trusted infrastructure: issues A2M devices and verifies attestations.
class A2mAuthority {
 public:
  explicit A2mAuthority(crypto::KeyRegistry& keys) : keys_(keys) {}
  A2mAuthority(const A2mAuthority&) = delete;
  A2mAuthority& operator=(const A2mAuthority&) = delete;

  A2m make_device(ProcessId owner);

  bool check(const A2mAttestation& a, ProcessId q) const;

 private:
  crypto::KeyRegistry& keys_;
  std::map<ProcessId, crypto::KeyId> device_keys_;
};

class A2m {
 public:
  ProcessId owner() const { return owner_; }

  /// Creates a new empty log and returns its id.
  LogId create_log();

  /// Appends x to log `id`. Returns the assigned 1-based sequence number,
  /// or nullopt if the log does not exist.
  std::optional<SeqNum> append(LogId id, Bytes x);

  /// Attests the entry at index s of log id (1-based). nullopt if out of
  /// range or the log does not exist.
  std::optional<A2mAttestation> lookup(LogId id, SeqNum s,
                                       const Bytes& nonce) const;

  /// Attests the current end of log id (seq = length, value = last entry;
  /// empty logs attest seq 0 with an empty value).
  std::optional<A2mAttestation> end(LogId id, const Bytes& nonce) const;

  std::optional<SeqNum> length(LogId id) const;

  // -- crash-recovery (see DESIGN.md §9) ------------------------------------
  /// Serialized log contents (all logs + the id allocator), suitable for a
  /// DurableStore.
  Bytes save_state() const;
  /// Restores state produced by save_state.
  void load_state(ByteSpan data);
  /// Deliberately models volatile log memory: every log vanishes and the id
  /// allocator rewinds, while the device key survives — re-created logs can
  /// attest fresh values for already-attested (log, seq) slots.
  /// Negative-test only.
  void reset_for_power_loss() {
    logs_.clear();
    next_log_ = 1;
  }

 private:
  friend class A2mAuthority;
  A2m(ProcessId owner, crypto::Signer device_key)
      : owner_(owner), device_key_(device_key) {}

  A2mAttestation make(A2mAttestation::Kind kind, LogId id, SeqNum seq,
                      Bytes value, const Bytes& nonce) const;

  ProcessId owner_;
  crypto::Signer device_key_;
  LogId next_log_ = 1;
  std::map<LogId, std::vector<Bytes>> logs_;
};

}  // namespace unidir::trusted
