#include "trusted/a2m_from_trinc.h"

#include "common/check.h"

namespace unidir::trusted {

Bytes A2mFromTrinc::entry_binding(LogId id, const Bytes& value) {
  serde::Writer w;
  w.str("a2m-over-trinc");
  w.uvarint(id);
  w.bytes(value);
  return w.take();
}

LogId A2mFromTrinc::create_log() {
  const LogId id = next_log_++;
  logs_.emplace(id, std::vector<StoredEntry>{});
  return id;
}

std::optional<SeqNum> A2mFromTrinc::append(LogId id, Bytes x) {
  auto it = logs_.find(id);
  if (it == logs_.end()) return std::nullopt;
  const SeqNum seq = it->second.size() + 1;
  // Counter id = log id: each log gets its own monotonic counter.
  auto att = trinket_.attest_on(id, seq, entry_binding(id, x));
  UNIDIR_CHECK_MSG(att.has_value(),
                   "trinket counter desynchronized from log length");
  it->second.push_back(StoredEntry{std::move(x), std::move(*att)});
  return seq;
}

std::optional<A2mOverTrincAttestation> A2mFromTrinc::lookup(
    LogId id, SeqNum s, const Bytes& nonce) const {
  auto it = logs_.find(id);
  if (it == logs_.end()) return std::nullopt;
  if (s == 0 || s > it->second.size()) return std::nullopt;
  const StoredEntry& e = it->second[s - 1];
  A2mOverTrincAttestation a;
  a.kind = A2mAttestation::Kind::Lookup;
  a.log = id;
  a.seq = s;
  a.value = e.value;
  a.nonce = nonce;
  a.inner = e.attestation;
  return a;
}

std::optional<A2mOverTrincAttestation> A2mFromTrinc::end(
    LogId id, const Bytes& nonce) const {
  auto it = logs_.find(id);
  if (it == logs_.end()) return std::nullopt;
  const SeqNum len = it->second.size();
  A2mOverTrincAttestation a;
  a.kind = A2mAttestation::Kind::End;
  a.log = id;
  a.seq = len;
  a.nonce = nonce;
  if (len > 0) {
    a.value = it->second.back().value;
    a.inner = it->second.back().attestation;
  }
  return a;
}

std::optional<SeqNum> A2mFromTrinc::length(LogId id) const {
  auto it = logs_.find(id);
  if (it == logs_.end()) return std::nullopt;
  return it->second.size();
}

bool A2mFromTrinc::check(const TrincAuthority& authority,
                         const A2mOverTrincAttestation& a, ProcessId q) {
  if (a.kind == A2mAttestation::Kind::End && a.seq == 0)
    return a.value.empty();  // empty log: nothing attestable yet
  if (!authority.check(a.inner, q)) return false;
  return a.inner.counter == a.log && a.inner.seq == a.seq &&
         a.inner.message == entry_binding(a.log, a.value);
}

}  // namespace unidir::trusted
