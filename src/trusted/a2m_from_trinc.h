// A2M implemented from TrInc — the Levin et al. reduction the paper cites
// ("TrInc can implement the interface of attested append-only memory").
//
// Construction: log id ↔ TrInc counter id; Append(id, x) attests x at the
// next counter value of counter id and stores the attestation in untrusted
// local memory; Lookup/End return the stored append-time attestation.
// Because the Trinket never reuses a counter value, there is exactly one
// attested value per (log, seq) — the append-only property — even though
// the bulk storage is untrusted.
//
// Fidelity note: the nonce in Lookup/End responses is echoed by untrusted
// code rather than being covered by the device signature (a TrInc
// attestation binds only (prev, c, m)). Levin et al. handle freshness with
// an extra attested round trip; the *non-equivocation* power — what the
// paper's classification is about — is identical, so we keep the
// reduction minimal.
#pragma once

#include <map>
#include <vector>

#include "trusted/a2m.h"
#include "trusted/trinc.h"

namespace unidir::trusted {

/// An A2M-shaped attestation whose authenticity is carried by an embedded
/// TrInc attestation.
struct A2mOverTrincAttestation {
  A2mAttestation::Kind kind = A2mAttestation::Kind::Lookup;
  LogId log = 0;
  SeqNum seq = 0;
  Bytes value;
  Bytes nonce;  // echoed, untrusted (see fidelity note above)
  TrincAttestation inner;

  bool operator==(const A2mOverTrincAttestation&) const = default;
};

class A2mFromTrinc {
 public:
  /// Takes ownership of the process's Trinket (the reduction consumes the
  /// whole device: every counter becomes a log).
  explicit A2mFromTrinc(Trinket trinket) : trinket_(std::move(trinket)) {}

  ProcessId owner() const { return trinket_.owner(); }

  LogId create_log();
  std::optional<SeqNum> append(LogId id, Bytes x);
  std::optional<A2mOverTrincAttestation> lookup(LogId id, SeqNum s,
                                                const Bytes& nonce) const;
  std::optional<A2mOverTrincAttestation> end(LogId id,
                                             const Bytes& nonce) const;
  std::optional<SeqNum> length(LogId id) const;

  /// Verifies an attestation against the TrInc authority: the inner TrInc
  /// attestation must verify for `q` and bind exactly (log, seq, value).
  static bool check(const TrincAuthority& authority,
                    const A2mOverTrincAttestation& a, ProcessId q);

  /// Canonical encoding of an entry as attested via TrInc. Exposed so
  /// check() and tests agree on the byte-level binding.
  static Bytes entry_binding(LogId id, const Bytes& value);

 private:
  struct StoredEntry {
    Bytes value;
    TrincAttestation attestation;
  };

  Trinket trinket_;
  LogId next_log_ = 1;
  // Untrusted storage: log -> entries (index = seq-1).
  std::map<LogId, std::vector<StoredEntry>> logs_;
};

}  // namespace unidir::trusted
