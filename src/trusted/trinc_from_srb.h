// TrInc from sequenced reliable broadcast — the paper's Theorem 1, which
// places trusted-log hardware at-or-below SRB in the power hierarchy.
//
// The paper's construction, verbatim:
//
//   Attest(c, m):          Broadcast(k, (c, m));   return (k, (c, m))
//   CheckAttestation(a,q): upon delivering (k, c, m) from q:
//                              if C[q] < c { store (k, (c, m)); C[q] = c; }
//                          return (stored (k,(c,m)) == a from q)
//
// The SRB's own sequence numbers (k) provide the unforgeable ordering a
// Trinket's counter would; the C[q] filter discards any Byzantine attempt
// to reuse a TrInc counter value c. Because SRB delivers the same stream
// in the same order everywhere, all correct processes store the same
// attestations — CheckAttestation is consistent, and eventually true for
// every correctly produced attestation (Theorem 1's two properties; both
// are exercised by the tests and experiment E1).
#pragma once

#include <map>

#include "broadcast/srb.h"
#include "common/serde.h"
#include "wire/channels.h"
#include "wire/router.h"

namespace unidir::trusted {

/// The attestation of the Theorem-1 construction: no device signature —
/// its authenticity is exactly the fact that it was SRB-delivered from q.
struct SrbAttestation {
  ProcessId owner = kNoProcess;
  SeqNum broadcast_seq = 0;  // k: the SRB sequence number
  SeqNum seq = 0;            // c: the TrInc counter value
  Bytes message;

  bool operator==(const SrbAttestation&) const = default;

  void encode(serde::Writer& w) const;
  static SrbAttestation decode(serde::Reader& r);
};

class TrincFromSrb {
 public:
  /// `srb` is this process's endpoint of any SRB implementation. The
  /// construction claims the endpoint's delivery callback. `hub`, if
  /// given, receives the decode-boundary counters (pseudo-channel
  /// wire::kTrincAttestCh); pass &world.wire_stats() when a World exists.
  TrincFromSrb(broadcast::SrbEndpoint& srb, ProcessId self,
               wire::StatsHub* hub = nullptr);

  /// Attest(c, m). Like a real Trinket, refuses locally if c was already
  /// used by *this* process (a Byzantine caller bypassing the refusal is
  /// exactly what the receiver-side C[q] filter handles).
  std::optional<SrbAttestation> attest(SeqNum c, const Bytes& m);

  /// CheckAttestation(a, q): true iff `a` has been stored from q's
  /// delivered stream. Eventually true for every correct attestation;
  /// false forever for anything q never attested.
  bool check(const SrbAttestation& a, ProcessId q) const;

  /// Highest TrInc counter value stored per process (the C[] array).
  SeqNum counter_of(ProcessId q) const;

 private:
  void on_delivery(const broadcast::Delivery& d);

  broadcast::SrbEndpoint& srb_;
  /// Decode boundary for attestation payloads arriving via SRB.
  wire::Router payload_router_;
  ProcessId self_;
  SeqNum my_last_c_ = 0;
  SeqNum my_next_k_ = 0;
  SeqNum dispatching_seq_ = 0;  // k of the delivery currently dispatching
  std::map<ProcessId, SeqNum> counters_;  // C[q]
  // stored[(q, c)] = the accepted attestation for that counter value.
  std::map<std::pair<ProcessId, SeqNum>, SrbAttestation> stored_;
};

}  // namespace unidir::trusted
