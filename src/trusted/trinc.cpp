#include "trusted/trinc.h"

#include "common/check.h"

namespace unidir::trusted {

Bytes TrincAttestation::signing_bytes() const {
  serde::Writer w;
  w.str("trinc-attest");
  w.uvarint(owner);
  w.uvarint(counter);
  w.uvarint(prev);
  w.uvarint(seq);
  w.bytes(message);
  return w.take();
}

void TrincAttestation::encode(serde::Writer& w) const {
  w.uvarint(owner);
  w.uvarint(counter);
  w.uvarint(prev);
  w.uvarint(seq);
  w.bytes(message);
  device_sig.encode(w);
}

TrincAttestation TrincAttestation::decode(serde::Reader& r) {
  TrincAttestation a;
  a.owner = serde::read<ProcessId>(r);
  a.counter = r.uvarint();
  a.prev = r.uvarint();
  a.seq = r.uvarint();
  a.message = r.bytes();
  a.device_sig = crypto::Signature::decode(r);
  return a;
}

Trinket TrincAuthority::make_trinket(ProcessId owner) {
  UNIDIR_REQUIRE_MSG(!device_keys_.contains(owner),
                     "owner already holds a Trinket");
  crypto::Signer key = keys_.generate_key();
  device_keys_.emplace(owner, key.key());
  return Trinket(owner, key);
}

bool TrincAuthority::check(const TrincAttestation& a, ProcessId q) const {
  if (a.owner != q) return false;
  auto it = device_keys_.find(q);
  if (it == device_keys_.end()) return false;
  if (a.device_sig.key != it->second) return false;
  return keys_.verify(a.device_sig, a.signing_bytes());
}

std::optional<TrincAttestation> Trinket::attest_on(CounterId counter,
                                                   SeqNum c, const Bytes& m) {
  SeqNum& last = last_[counter];
  if (c <= last) return std::nullopt;  // the whole point of the device
  TrincAttestation a;
  a.owner = owner_;
  a.counter = counter;
  a.prev = last;
  a.seq = c;
  a.message = m;
  a.device_sig = device_key_.sign(a.signing_bytes());
  last = c;
  return a;
}

SeqNum Trinket::last_used(CounterId counter) const {
  auto it = last_.find(counter);
  return it == last_.end() ? 0 : it->second;
}

Bytes Trinket::save_counters() const { return serde::encode(last_); }

void Trinket::load_counters(ByteSpan data) {
  last_ = serde::decode<std::map<CounterId, SeqNum>>(data);
}

}  // namespace unidir::trusted
