#include "trusted/trinc_from_srb.h"

namespace unidir::trusted {

namespace {

struct AttestWire {
  static constexpr wire::MsgDesc kDesc{1, "trinc-attest"};

  SeqNum c = 0;
  Bytes m;

  void encode(serde::Writer& w) const {
    w.uvarint(c);
    w.bytes(m);
  }
  static AttestWire decode(serde::Reader& r) {
    AttestWire a;
    a.c = r.uvarint();
    a.m = r.bytes();
    return a;
  }
};

}  // namespace

void SrbAttestation::encode(serde::Writer& w) const {
  w.uvarint(owner);
  w.uvarint(broadcast_seq);
  w.uvarint(seq);
  w.bytes(message);
}

SrbAttestation SrbAttestation::decode(serde::Reader& r) {
  SrbAttestation a;
  a.owner = serde::read<ProcessId>(r);
  a.broadcast_seq = r.uvarint();
  a.seq = r.uvarint();
  a.message = r.bytes();
  return a;
}

TrincFromSrb::TrincFromSrb(broadcast::SrbEndpoint& srb, ProcessId self,
                           wire::StatsHub* hub)
    : srb_(srb),
      payload_router_([hub]() { return hub; }, wire::kTrincAttestCh),
      self_(self) {
  srb_.set_deliver([this](const broadcast::Delivery& d) { on_delivery(d); });
  // The delivery's seq (k) rides alongside; the handler reads it from the
  // in-flight delivery, so register once and stash the seq per dispatch.
  payload_router_.on<AttestWire>([this](ProcessId from, AttestWire wire) {
    // The paper's filter: accept only strictly increasing counter values.
    // SRB's total per-sender order makes this filter agree at all correct
    // processes.
    SeqNum& high = counters_[from];
    if (wire.c <= high) return;
    high = wire.c;
    SrbAttestation a;
    a.owner = from;
    a.broadcast_seq = dispatching_seq_;
    a.seq = wire.c;
    a.message = std::move(wire.m);
    stored_.emplace(std::make_pair(from, a.seq), std::move(a));
  });
}

std::optional<SrbAttestation> TrincFromSrb::attest(SeqNum c, const Bytes& m) {
  if (c <= my_last_c_) return std::nullopt;
  my_last_c_ = c;
  srb_.broadcast(wire::encode_tagged(AttestWire{c, m}));
  SrbAttestation a;
  a.owner = self_;
  a.broadcast_seq = ++my_next_k_;  // k: our next SRB sequence number
  a.seq = c;
  a.message = m;
  return a;
}

void TrincFromSrb::on_delivery(const broadcast::Delivery& d) {
  // A Byzantine process broadcasting junk attests nothing: the router
  // counts it as dropped_malformed and the handler never runs.
  dispatching_seq_ = d.seq;
  payload_router_.dispatch(d.sender, d.message);
}

bool TrincFromSrb::check(const SrbAttestation& a, ProcessId q) const {
  if (a.owner != q) return false;
  auto it = stored_.find({q, a.seq});
  return it != stored_.end() && it->second == a;
}

SeqNum TrincFromSrb::counter_of(ProcessId q) const {
  auto it = counters_.find(q);
  return it == counters_.end() ? 0 : it->second;
}

}  // namespace unidir::trusted
