// TrInc — trusted incrementer (Levin et al., NSDI'09), per the paper's
// simplified interface (Figure "TrInc Interface"):
//
//   attestation Attest(seq-num c, message m)
//       valid iff c is higher than any seq-num used on this Trinket so
//       far; attests to (prev, c, m), where prev is the last attested
//       sequence number.
//   bool CheckAttestation(attestation a, id q)
//       true iff a was previously output by Trinket T_q.
//
// Non-equivocation: a Trinket never attests two different messages under
// the same counter value, so a Byzantine host cannot produce conflicting
// attested messages.
//
// Faithful extensions kept from the full TrInc design: a Trinket holds
// multiple independent counters (needed by the A2M-from-TrInc reduction);
// the simplified interface is counter 0.
#pragma once

#include <map>
#include <optional>

#include "common/bytes.h"
#include "common/serde.h"
#include "common/types.h"
#include "crypto/signature.h"

namespace unidir::trusted {

/// Identifies one counter within a Trinket.
using CounterId = std::uint64_t;

struct TrincAttestation {
  ProcessId owner = kNoProcess;  // whose Trinket produced it
  CounterId counter = 0;
  SeqNum prev = 0;  // last attested seq-num before this one
  SeqNum seq = 0;   // the attested seq-num c
  Bytes message;
  crypto::Signature device_sig;

  bool operator==(const TrincAttestation&) const = default;

  Bytes signing_bytes() const;
  void encode(serde::Writer& w) const;
  static TrincAttestation decode(serde::Reader& r);
};

class Trinket;

/// The trusted manufacturing / attestation infrastructure: creates
/// Trinkets (each with a device key the host never sees) and verifies
/// attestations. One per world.
class TrincAuthority {
 public:
  explicit TrincAuthority(crypto::KeyRegistry& keys) : keys_(keys) {}
  TrincAuthority(const TrincAuthority&) = delete;
  TrincAuthority& operator=(const TrincAuthority&) = delete;

  /// Issues a Trinket to `owner`. At most one per owner.
  Trinket make_trinket(ProcessId owner);

  /// CheckAttestation(a, q): true iff `a` is a valid attestation produced
  /// by the Trinket issued to `q`.
  bool check(const TrincAttestation& a, ProcessId q) const;

 private:
  crypto::KeyRegistry& keys_;
  std::map<ProcessId, crypto::KeyId> device_keys_;
};

/// The per-process trusted device. Movable; host code can only go through
/// attest() — there is no way to rewind a counter.
class Trinket {
 public:
  ProcessId owner() const { return owner_; }

  /// Attest(c, m) on counter 0 — the paper's simplified interface.
  std::optional<TrincAttestation> attest(SeqNum c, const Bytes& m) {
    return attest_on(0, c, m);
  }

  /// Full interface: attest on a named counter. Returns nullopt if c is
  /// not strictly greater than the counter's last attested value.
  std::optional<TrincAttestation> attest_on(CounterId counter, SeqNum c,
                                            const Bytes& m);

  /// Last attested seq-num on a counter (0 if never used).
  SeqNum last_used(CounterId counter = 0) const;

  // -- crash-recovery (see DESIGN.md §9) ------------------------------------
  // TrInc's counters live in device NVRAM; save/load model the host
  // persisting that NVRAM image. reset_for_power_loss models the *broken*
  // deployment where the counters were volatile: every counter returns to
  // zero while the device key survives, so the device will happily attest a
  // second, different message under an already-used counter value — the
  // equivocation the paper's classification says trusted logs must prevent.

  /// Serialized counter table, suitable for a DurableStore.
  Bytes save_counters() const;
  /// Restores a table produced by save_counters.
  void load_counters(ByteSpan data);
  /// Deliberately models volatile counters: zeroes every counter, keeps the
  /// device key. Negative-test only.
  void reset_for_power_loss() { last_.clear(); }

 private:
  friend class TrincAuthority;
  Trinket(ProcessId owner, crypto::Signer device_key)
      : owner_(owner), device_key_(device_key) {}

  ProcessId owner_;
  crypto::Signer device_key_;
  std::map<CounterId, SeqNum> last_;
};

}  // namespace unidir::trusted
