#include "trusted/usig.h"

#include "common/check.h"
#include "common/serde.h"

namespace unidir::trusted {

namespace {

Bytes ui_output_bytes(SeqNum counter, const crypto::Digest& digest) {
  serde::Writer w;
  w.uvarint(counter);
  w.bytes(crypto::digest_bytes(digest));
  return w.take();
}

/// The enclave program: sealed state is the varint-encoded counter; each
/// call increments it and emits (counter, input digest).
Bytes usig_program(Bytes& state, const Bytes& input) {
  const auto counter = serde::decode<SeqNum>(state) + 1;
  state = serde::encode(counter);
  // Input is the raw 32-byte digest computed at the call boundary.
  return ui_output_bytes(counter, crypto::digest_from_bytes(input));
}

}  // namespace

void UniqueIdentifier::encode(serde::Writer& w) const {
  w.uvarint(counter);
  w.bytes(crypto::digest_bytes(digest));
  sig.encode(w);
}

UniqueIdentifier UniqueIdentifier::decode(serde::Reader& r) {
  UniqueIdentifier ui;
  ui.counter = r.uvarint();
  // Runs at the wire decode boundary on attacker-controlled bytes: a bad
  // digest length must surface as DecodeError (counted, dropped), not as
  // digest_from_bytes's invalid_argument.
  const Bytes digest = r.bytes();
  if (digest.size() != crypto::kSha256DigestSize)
    throw serde::DecodeError("UniqueIdentifier: bad digest size");
  ui.digest = crypto::digest_from_bytes(digest);
  ui.sig = crypto::Signature::decode(r);
  return ui;
}

UsigEnclave::UsigEnclave(crypto::KeyRegistry& keys)
    : enclave_(keys, usig_program, serde::encode(SeqNum{0})) {}

UniqueIdentifier UsigEnclave::create_ui(const Bytes& message) {
  const crypto::Digest digest = crypto::Sha256::hash(message);
  const SealedOutput out = enclave_.call(crypto::digest_bytes(digest));
  UniqueIdentifier ui;
  ui.counter = ++last_;
  ui.digest = digest;
  ui.sig = out.sig;
  UNIDIR_CHECK_MSG(out.output == ui_output_bytes(ui.counter, digest),
                   "USIG mirror desynchronized from enclave");
  return ui;
}

void UsigEnclave::load_state(Bytes data) {
  last_ = serde::decode<SeqNum>(data);
  enclave_.restore_sealed_state(std::move(data));
}

void UsigEnclave::reset_for_power_loss() {
  last_ = 0;
  enclave_.restore_sealed_state(serde::encode(SeqNum{0}));
}

bool UsigEnclave::verify_ui(const crypto::KeyRegistry& keys,
                            crypto::KeyId key, const UniqueIdentifier& ui,
                            const Bytes& message) {
  if (crypto::Sha256::hash(message) != ui.digest) return false;
  SealedOutput out;
  out.output = ui_output_bytes(ui.counter, ui.digest);
  out.sig = ui.sig;
  return SgxEnclave::verify(keys, key, out);
}

}  // namespace unidir::trusted
