#include "trusted/usig.h"

#include <vector>

#include "common/check.h"
#include "common/serde.h"

namespace unidir::trusted {

namespace {

Bytes ui_output_bytes(SeqNum counter, const crypto::Digest& digest) {
  serde::Writer w;
  w.uvarint(counter);
  w.bytes(crypto::digest_bytes(digest));
  return w.take();
}

/// The enclave program: sealed state is the varint-encoded counter; each
/// call increments it and emits (counter, input digest).
Bytes usig_program(Bytes& state, const Bytes& input) {
  const auto counter = serde::decode<SeqNum>(state) + 1;
  state = serde::encode(counter);
  // Input is the raw 32-byte digest computed at the call boundary.
  return ui_output_bytes(counter, crypto::digest_from_bytes(input));
}

}  // namespace

void UniqueIdentifier::encode(serde::Writer& w) const {
  w.uvarint(counter);
  w.bytes(crypto::digest_bytes(digest));
  sig.encode(w);
}

UniqueIdentifier UniqueIdentifier::decode(serde::Reader& r) {
  UniqueIdentifier ui;
  ui.counter = r.uvarint();
  // Runs at the wire decode boundary on attacker-controlled bytes: a bad
  // digest length must surface as DecodeError (counted, dropped), not as
  // digest_from_bytes's invalid_argument.
  const Bytes digest = r.bytes();
  if (digest.size() != crypto::kSha256DigestSize)
    throw serde::DecodeError("UniqueIdentifier: bad digest size");
  ui.digest = crypto::digest_from_bytes(digest);
  ui.sig = crypto::Signature::decode(r);
  return ui;
}

UsigEnclave::UsigEnclave(crypto::KeyRegistry& keys)
    : enclave_(keys, usig_program, serde::encode(SeqNum{0})) {}

UniqueIdentifier UsigEnclave::create_ui(const Bytes& message) {
  const crypto::Digest digest = crypto::Sha256::hash(message);
  const SealedOutput out = enclave_.call(crypto::digest_bytes(digest));
  UniqueIdentifier ui;
  ui.counter = ++last_;
  ui.digest = digest;
  ui.sig = out.sig;
  UNIDIR_CHECK_MSG(out.output == ui_output_bytes(ui.counter, digest),
                   "USIG mirror desynchronized from enclave");
  // Persist BEFORE returning: the caller only gets (and can only send) the
  // UI after the advanced counter reached the nvram sink.
  if (nvram_) nvram_(enclave_.sealed_state());
  return ui;
}

void UsigEnclave::load_state(Bytes data) {
  last_ = serde::decode<SeqNum>(data);
  enclave_.restore_sealed_state(std::move(data));
}

void UsigEnclave::reset_for_power_loss() {
  last_ = 0;
  enclave_.restore_sealed_state(serde::encode(SeqNum{0}));
}

bool UsigEnclave::verify_ui(const crypto::KeyRegistry& keys,
                            crypto::KeyId key, const UniqueIdentifier& ui,
                            const Bytes& message) {
  if (crypto::Sha256::hash(message) != ui.digest) return false;
  SealedOutput out;
  out.output = ui_output_bytes(ui.counter, ui.digest);
  out.sig = ui.sig;
  return SgxEnclave::verify(keys, key, out);
}

void UsigEnclave::verify_ui_batch(const crypto::KeyRegistry& keys,
                                  UiVerifyJob* jobs, std::size_t n) {
  // Phase 1: every message digest through the multi-buffer lanes at once.
  std::vector<crypto::Digest> digests(n);
  std::vector<crypto::ShaJob> sj(n);
  for (std::size_t i = 0; i < n; ++i)
    sj[i] = crypto::ShaJob{
        nullptr, ByteSpan(jobs[i].message->data(), jobs[i].message->size()),
        &digests[i]};
  crypto::Sha256::hash_batch(sj.data(), n);

  // Phase 2: attestation signatures of the surviving jobs as one registry
  // batch. A digest or attestation-key mismatch fails without touching the
  // registry, exactly as the serial path's early returns do.
  std::vector<Bytes> reports;
  std::vector<crypto::VerifyJob> vj;
  std::vector<std::size_t> which;
  reports.reserve(n);
  vj.reserve(n);
  which.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (digests[i] != jobs[i].ui->digest ||
        jobs[i].ui->sig.key != jobs[i].key) {
      jobs[i].ok = false;
      continue;
    }
    reports.push_back(SealedOutput::report_bytes(
        ui_output_bytes(jobs[i].ui->counter, jobs[i].ui->digest)));
    which.push_back(i);
  }
  if (which.empty()) return;
  for (std::size_t k = 0; k < which.size(); ++k)
    vj.push_back(crypto::VerifyJob{
        &jobs[which[k]].ui->sig,
        ByteSpan(reports[k].data(), reports[k].size()), false});
  keys.verify_batch(vj.data(), vj.size());
  for (std::size_t k = 0; k < which.size(); ++k)
    jobs[which[k]].ok = vj[k].ok;
}

}  // namespace unidir::trusted
