#include "trusted/a2m.h"

#include "common/check.h"

namespace unidir::trusted {

Bytes A2mAttestation::signing_bytes() const {
  serde::Writer w;
  w.str("a2m-attest");
  w.uvarint(owner);
  w.u8(static_cast<std::uint8_t>(kind));
  w.uvarint(log);
  w.uvarint(seq);
  w.bytes(value);
  w.bytes(nonce);
  return w.take();
}

void A2mAttestation::encode(serde::Writer& w) const {
  w.uvarint(owner);
  w.u8(static_cast<std::uint8_t>(kind));
  w.uvarint(log);
  w.uvarint(seq);
  w.bytes(value);
  w.bytes(nonce);
  device_sig.encode(w);
}

A2mAttestation A2mAttestation::decode(serde::Reader& r) {
  A2mAttestation a;
  a.owner = serde::read<ProcessId>(r);
  const std::uint8_t k = r.u8();
  if (k < 1 || k > 2) throw serde::DecodeError("bad attestation kind");
  a.kind = static_cast<Kind>(k);
  a.log = r.uvarint();
  a.seq = r.uvarint();
  a.value = r.bytes();
  a.nonce = r.bytes();
  a.device_sig = crypto::Signature::decode(r);
  return a;
}

A2m A2mAuthority::make_device(ProcessId owner) {
  UNIDIR_REQUIRE_MSG(!device_keys_.contains(owner),
                     "owner already holds an A2M device");
  crypto::Signer key = keys_.generate_key();
  device_keys_.emplace(owner, key.key());
  return A2m(owner, key);
}

bool A2mAuthority::check(const A2mAttestation& a, ProcessId q) const {
  if (a.owner != q) return false;
  auto it = device_keys_.find(q);
  if (it == device_keys_.end()) return false;
  if (a.device_sig.key != it->second) return false;
  return keys_.verify(a.device_sig, a.signing_bytes());
}

LogId A2m::create_log() {
  const LogId id = next_log_++;
  logs_.emplace(id, std::vector<Bytes>{});
  return id;
}

std::optional<SeqNum> A2m::append(LogId id, Bytes x) {
  auto it = logs_.find(id);
  if (it == logs_.end()) return std::nullopt;
  it->second.push_back(std::move(x));
  return it->second.size();
}

A2mAttestation A2m::make(A2mAttestation::Kind kind, LogId id, SeqNum seq,
                         Bytes value, const Bytes& nonce) const {
  A2mAttestation a;
  a.owner = owner_;
  a.kind = kind;
  a.log = id;
  a.seq = seq;
  a.value = std::move(value);
  a.nonce = nonce;
  a.device_sig = device_key_.sign(a.signing_bytes());
  return a;
}

std::optional<A2mAttestation> A2m::lookup(LogId id, SeqNum s,
                                          const Bytes& nonce) const {
  auto it = logs_.find(id);
  if (it == logs_.end()) return std::nullopt;
  if (s == 0 || s > it->second.size()) return std::nullopt;
  return make(A2mAttestation::Kind::Lookup, id, s, it->second[s - 1], nonce);
}

std::optional<A2mAttestation> A2m::end(LogId id, const Bytes& nonce) const {
  auto it = logs_.find(id);
  if (it == logs_.end()) return std::nullopt;
  const SeqNum len = it->second.size();
  Bytes last = len == 0 ? Bytes{} : it->second.back();
  return make(A2mAttestation::Kind::End, id, len, std::move(last), nonce);
}

std::optional<SeqNum> A2m::length(LogId id) const {
  auto it = logs_.find(id);
  if (it == logs_.end()) return std::nullopt;
  return it->second.size();
}

Bytes A2m::save_state() const {
  serde::Writer w;
  w.uvarint(next_log_);
  serde::write(w, logs_);
  return w.take();
}

void A2m::load_state(ByteSpan data) {
  serde::Reader r(data);
  next_log_ = r.uvarint();
  logs_ = serde::read<std::map<LogId, std::vector<Bytes>>>(r);
  r.expect_done();
}

}  // namespace unidir::trusted
