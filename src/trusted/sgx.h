// SGX-style enclave simulation.
//
// The paper groups Intel SGX / ARM TrustZone with the trusted-log
// mechanisms: "from the perspective of providing non-equivocation
// guarantees [they] are similar to A2M and TrInc, though in addition they
// allow for more expressive computations". This class models exactly that
// power: a deterministic program running over sealed state, whose outputs
// are signed with an enclave attestation key the host never sees.
//
// Substitution note (DESIGN.md): linking the real SGX SDK requires SGX
// hardware; the BFT protocols built on enclaves use only the contract
// "sealed state + attested outputs", which this simulation provides. The
// host can crash the enclave or withhold calls — it cannot fork the state
// (no rollback API is exposed) or forge outputs.
#pragma once

#include <functional>

#include "common/bytes.h"
#include "common/types.h"
#include "crypto/signature.h"

namespace unidir::trusted {

/// Output of an enclave call: the program's result plus the enclave
/// signature binding it. Verifiers check sig over report_bytes(output).
struct SealedOutput {
  Bytes output;
  crypto::Signature sig;

  static Bytes report_bytes(const Bytes& output);
};

class SgxEnclave {
 public:
  /// A deterministic program: mutates sealed state, returns an output.
  using Program = std::function<Bytes(Bytes& state, const Bytes& input)>;

  /// `keys` plays the role of the remote-attestation infrastructure.
  SgxEnclave(crypto::KeyRegistry& keys, Program program, Bytes initial_state);

  /// Runs the program inside the enclave; the returned output is attested.
  SealedOutput call(const Bytes& input);

  /// The enclave's attestation key id (public; used to verify outputs).
  crypto::KeyId attestation_key() const { return key_.key(); }

  /// Verifies that `out` was produced by the enclave with key `key`.
  static bool verify(const crypto::KeyRegistry& keys, crypto::KeyId key,
                     const SealedOutput& out);

  // -- sealed-storage export (crash-recovery model) -------------------------
  // Real SGX seals state to disk encrypted under a key derived from the
  // CPU; the host can store and return the blob but not read or forge it.
  // We model the blob as the raw state bytes and rely on the crash-recovery
  // fault model: durable storage is written only by the honest host path,
  // so rollback attacks are out of scope (a Byzantine host is modelled by
  // not calling the device at all, never by feeding it stale blobs).

  /// The current sealed blob, for persisting to durable storage.
  const Bytes& sealed_state() const { return state_; }

  /// Reinstalls a previously exported blob after a restart. The attestation
  /// key is burned into the device and is NOT part of the blob — it always
  /// survives.
  void restore_sealed_state(Bytes state) { state_ = std::move(state); }

 private:
  Program program_;
  Bytes state_;  // sealed: reachable only through program_
  crypto::Signer key_;
};

}  // namespace unidir::trusted
