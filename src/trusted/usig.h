// USIG — Unique Sequential Identifier Generator (Veronese et al.,
// "Efficient Byzantine fault-tolerance", the MinBFT trusted service) —
// implemented as a program *inside* the SGX-style enclave.
//
// createUI(m) binds a fresh, strictly increasing counter value to the hash
// of m, attested by the enclave key. A replica therefore cannot assign the
// same counter value to two different messages: the non-equivocation
// primitive MinBFT builds its n = 2f+1 protocol on.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "crypto/sha256.h"
#include "trusted/sgx.h"

namespace unidir::trusted {

struct UniqueIdentifier {
  SeqNum counter = 0;
  crypto::Digest digest{};  // SHA-256 of the certified message
  crypto::Signature sig;    // enclave attestation over (counter, digest)

  bool operator==(const UniqueIdentifier&) const = default;

  void encode(serde::Writer& w) const;
  static UniqueIdentifier decode(serde::Reader& r);
};

class UsigEnclave {
 public:
  explicit UsigEnclave(crypto::KeyRegistry& keys);

  /// Certifies `message` with the next counter value (1, 2, 3, …).
  UniqueIdentifier create_ui(const Bytes& message);

  /// The enclave attestation key other replicas verify against.
  crypto::KeyId key() const { return enclave_.attestation_key(); }

  SeqNum last_counter() const { return last_; }

  /// verifyUI: `ui` certifies `message` under the USIG with key `key`.
  static bool verify_ui(const crypto::KeyRegistry& keys, crypto::KeyId key,
                        const UniqueIdentifier& ui, const Bytes& message);

  /// One verification in a verify_ui_batch call; `ok` is the output.
  struct UiVerifyJob {
    crypto::KeyId key = 0;
    const UniqueIdentifier* ui = nullptr;
    const Bytes* message = nullptr;
    bool ok = false;
  };

  /// Batched verifyUI: per-job results equal verify_ui run serially, but
  /// the message digests go through Sha256::hash_batch's multi-buffer
  /// lanes and the attestation checks through KeyRegistry::verify_batch,
  /// so a quorum flood's UIs amortize into a handful of wide compression
  /// calls instead of one stream each.
  static void verify_ui_batch(const crypto::KeyRegistry& keys,
                              UiVerifyJob* jobs, std::size_t n);

  // -- crash-recovery (see DESIGN.md §9) ------------------------------------
  /// The enclave's sealed counter blob, suitable for a DurableStore.
  Bytes save_state() const { return enclave_.sealed_state(); }
  /// Reinstalls a blob produced by save_state after a restart.
  void load_state(Bytes data);
  /// Deliberately models an un-sealed counter: it rewinds to 0 while the
  /// attestation key survives, so the enclave will re-issue already-used
  /// counter values for different messages. Negative-test only.
  void reset_for_power_loss();

  /// Write-through persistence: after every create_ui the freshly sealed
  /// counter blob is handed to `sink` before the UI escapes the enclave.
  /// Wired to a durable-store put, this is the counter-then-send ordering
  /// that makes the counter survive kill -9: no UI a peer can ever see has
  /// a counter value that was not first on stable media. Leaving the sink
  /// unset models the PR-4 "volatile counter" negative experiment.
  void set_nvram(std::function<void(const Bytes&)> sink) {
    nvram_ = std::move(sink);
  }

 private:
  SgxEnclave enclave_;
  SeqNum last_ = 0;  // mirror for introspection; truth lives in the enclave
  std::function<void(const Bytes&)> nvram_;
};

}  // namespace unidir::trusted
