#!/usr/bin/env python3
"""Validate a Chrome-trace JSON file against bench/trace_schema.json.

Stdlib-only interpreter of the JSON-Schema keyword subset the schema
actually uses: type, required, properties, additionalProperties, items,
enum, minimum. Not a general validator — if the schema grows a keyword
this script doesn't know, it fails loudly rather than silently passing.

Usage:
    python3 tools/validate_trace.py BENCH_trace.json bench/trace_schema.json
"""

import json
import sys

KNOWN_KEYWORDS = {
    "$comment",
    "type",
    "required",
    "properties",
    "additionalProperties",
    "items",
    "enum",
    "minimum",
}

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; a JSON true is not an integer.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(value, schema, path, errors):
    unknown = set(schema) - KNOWN_KEYWORDS
    if unknown:
        errors.append(f"{path}: schema uses unsupported keywords {sorted(unknown)}")
        return

    expected = schema.get("type")
    if expected is not None and not TYPE_CHECKS[expected](value):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, item in value.items():
            if key in props:
                validate(item, props[key], f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                validate(item, extra, f"{path}.{key}", errors)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    trace_path, schema_path = argv[1], argv[2]
    with open(trace_path, "rb") as f:
        trace = json.load(f)
    with open(schema_path, "rb") as f:
        schema = json.load(f)

    errors = []
    validate(trace, schema, "$", errors)
    if errors:
        for e in errors[:20]:
            print(f"FAIL {trace_path}: {e}", file=sys.stderr)
        if len(errors) > 20:
            print(f"... and {len(errors) - 20} more", file=sys.stderr)
        return 1

    events = trace.get("traceEvents", [])
    print(f"OK {trace_path}: {len(events)} events valid against {schema_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
