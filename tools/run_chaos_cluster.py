#!/usr/bin/env python3
"""Kill/restart chaos harness for the real minbft_kv cluster.

Extends run_local_cluster.py with the three experiments DESIGN.md §14
describes, all against examples/minbft_kv in real UDP mode:

  default      4 replicas with file-backed durable stores under a seeded
               FaultPlan (drop/delay/duplicate/corrupt). One replica is
               kill -9'd mid-workload and restarted from its durable
               directory. Gates: the client commits every request, the
               restarted replica reports a recovery, and every pair of
               replica reports agrees on the execution-log chain digest at
               every common sampled count (prefix consistency).

  --volatile   The negative experiment (the paper's classification made
               executable): the same kill -9, but the victim restarts with
               a WIPED durable directory and --volatile-usig — its USIG
               counter rewinds, exactly what durable trusted state exists
               to prevent. A fourth replica held back until the restart
               provides the fresh peer that accepts the re-issued counter
               stream, and the surviving majority keeps the original
               branch (a large --vc-timeout-ticks stops them from electing
               a new primary meanwhile). Gate: the chain digests CONFLICT
               at a common count — the harness fails if no fork appears.

  --no-replicas  Client-hang regression: zero replicas are started; the
               client must give up after bounded retries, print the
               give-up count, and exit 3 — not hang, not exit 0.

Stdlib-only. Exit status 0 iff the selected experiment's gate holds.

Usage:
    python3 tools/run_chaos_cluster.py [--binary build/examples/minbft_kv]
        [--requests 12] [--timeout-s 90] [--volatile | --no-replicas]
"""

import argparse
import os
import re
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

REPLICAS = 4

# Mild, CI-safe rates: enough loss to exercise every retry path without
# making the run's duration a coin flip. Per-process seeds are derived
# inside the binary (seed * 1000003 + id).
DEFAULT_FAULT_PLAN = """\
# run_chaos_cluster.py default plan
seed=1337
drop=20000
duplicate=20000
delay=50000
delay_min=1
delay_max=5
corrupt=10000
"""


def free_ports(n):
    socks = [socket.socket(socket.AF_INET, socket.SOCK_DGRAM) for _ in range(n)]
    for s in socks:
        s.bind(("127.0.0.1", 0))
    ports = [s.getsockname()[1] for s in socks]
    for s in socks:
        s.close()
    return ports


def parse_chains(report):
    """'chains=4:aabbccdd,8:11223344' -> {4: 'aabbccdd', 8: '11223344'}."""
    m = re.search(r"chains=([0-9a-f:,]*)", report)
    if not m or not m.group(1):
        return {}
    out = {}
    for sample in m.group(1).split(","):
        count, digest = sample.split(":")
        out[int(count)] = digest
    return out


def chain_conflicts(reports):
    """Pairs of replica ids whose chain digests differ at a common count."""
    chains = {pid: parse_chains(rep) for pid, rep in reports.items()}
    conflicts = []
    pids = sorted(chains)
    for i, a in enumerate(pids):
        for b in pids[i + 1:]:
            for count in sorted(set(chains[a]) & set(chains[b])):
                if chains[a][count] != chains[b][count]:
                    conflicts.append((a, b, count))
                    break
    return conflicts


class Cluster:
    """Process bookkeeping shared by the three experiments."""

    def __init__(self, args, workdir):
        self.args = args
        self.workdir = workdir
        self.total = REPLICAS + 1  # + the client, the highest id
        self.ports = free_ports(self.total)
        self.peers = ",".join(f"127.0.0.1:{p}" for p in self.ports)
        self.procs = {}  # pid -> Popen (current incarnation)
        self.reports = {}  # pid -> final report text

    def durable_dir(self, pid):
        return os.path.join(self.workdir, f"replica{pid}")

    def cmd(self, pid, extra):
        return [
            self.args.binary,
            "--id", str(pid),
            "--listen", f"127.0.0.1:{self.ports[pid]}",
            "--peers", self.peers,
            "--replicas", str(REPLICAS),
            "--requests", str(self.args.requests),
            "--seed", str(self.args.seed),
            "--timeout-s", str(self.args.timeout_s),
            "--chain-interval", "1",
        ] + extra

    def launch(self, pid, extra):
        self.procs[pid] = subprocess.Popen(
            self.cmd(pid, extra), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        return self.procs[pid]

    def kill9(self, pid):
        proc = self.procs.pop(pid)
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        proc.stdout.close()

    def reap_replicas(self):
        """SIGTERM every live replica and collect final reports."""
        ok = True
        for pid, proc in self.procs.items():
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for pid, proc in self.procs.items():
            try:
                out, _ = proc.communicate(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                out, _ = proc.communicate()
                print(f"error: replica {pid} ignored SIGTERM",
                      file=sys.stderr)
                ok = False
            sys.stdout.write(out)
            self.reports[pid] = out
        self.procs.clear()
        return ok

    def kill_all(self):
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.kill()


def check_alive(cluster, pids):
    for pid in pids:
        proc = cluster.procs.get(pid)
        if proc is None or proc.poll() is not None:
            rc = "missing" if proc is None else proc.returncode
            print(f"error: replica {pid} died early (rc={rc})",
                  file=sys.stderr)
            if proc is not None:
                print(proc.stdout.read(), file=sys.stderr)
            return False
    return True


def run_client(cluster, extra=()):
    """Launch the client, wait it out, return (returncode, stdout)."""
    client = cluster.launch(REPLICAS, list(extra))
    del cluster.procs[REPLICAS]  # not a replica; reap here
    try:
        out, _ = client.communicate(timeout=cluster.args.timeout_s + 30)
    except subprocess.TimeoutExpired:
        client.kill()
        out, _ = client.communicate()
        print("error: client timed out (the hang this harness regresses)",
              file=sys.stderr)
        print(out, file=sys.stderr)
        return None, out
    sys.stdout.write(out)
    return client.returncode, out


def run_durable(cluster, args):
    """Kill -9 a replica mid-workload; it must rejoin from disk."""
    plan_path = os.path.join(cluster.workdir, "fault.plan")
    if args.fault_plan:
        plan_path = args.fault_plan
    else:
        with open(plan_path, "w") as f:
            f.write(DEFAULT_FAULT_PLAN)
    victim = 1  # a backup: the workload keeps flowing through the outage

    base = ["--fault-plan", plan_path, "--max-attempts", "40"]
    for pid in range(REPLICAS):
        cluster.launch(pid, base + ["--durable-dir",
                                    cluster.durable_dir(pid)])
    time.sleep(0.3)
    if not check_alive(cluster, range(REPLICAS)):
        return 1

    # Pace the client (think time between requests) so the workload spans
    # the kill/restart window instead of finishing in one burst; ticks are
    # 200us, so 1500 ticks = 300ms/request.
    client = cluster.launch(REPLICAS, base + ["--think-ticks", "1500"])
    del cluster.procs[REPLICAS]

    # Mid-workload: long enough for commits (and durable images) to exist,
    # short enough that plenty of requests remain for the rejoined replica
    # to participate in.
    time.sleep(args.kill_after_s)
    print(f"chaos: kill -9 replica {victim}")
    cluster.kill9(victim)
    time.sleep(args.restart_after_s)
    print(f"chaos: restarting replica {victim} from its durable dir")
    cluster.launch(victim, base + ["--durable-dir",
                                   cluster.durable_dir(victim)])

    try:
        out, _ = client.communicate(timeout=args.timeout_s + 30)
    except subprocess.TimeoutExpired:
        client.kill()
        out, _ = client.communicate()
        print("error: client timed out", file=sys.stderr)
        print(out, file=sys.stderr)
        return 1
    sys.stdout.write(out)
    m = re.search(r"completed=(\d+) gave_up=(\d+)", out)
    if client.returncode != 0 or not m or int(m.group(1)) < args.requests:
        print(f"error: client rc={client.returncode}, report: "
              f"{m.group(0) if m else 'missing'}", file=sys.stderr)
        return 1

    # Give the rejoined replica a beat to finish state transfer before the
    # SIGTERM snapshot (and to be safely past signal-handler install).
    time.sleep(1.0)
    if not cluster.reap_replicas():
        return 1
    victim_report = cluster.reports[victim]
    if "(recovering from durable image)" not in victim_report:
        print("error: restarted replica did not boot from its durable image",
              file=sys.stderr)
        return 1
    rm = re.search(r"recoveries=(\d+)", victim_report)
    if not rm or int(rm.group(1)) < 1:
        print("error: restarted replica reports no recovery",
              file=sys.stderr)
        return 1

    conflicts = chain_conflicts(cluster.reports)
    if conflicts:
        print(f"error: execution logs diverged: {conflicts}", file=sys.stderr)
        return 1
    caught_up = sum(
        1 for rep in cluster.reports.values()
        if (em := re.search(r"executed=(\d+)", rep))
        and int(em.group(1)) >= args.requests)
    f = (REPLICAS - 1) // 2
    if caught_up < f + 1:
        print(f"error: only {caught_up} replicas executed everything "
              f"(need >= f+1 = {f + 1})", file=sys.stderr)
        return 1
    print(f"ok: durable chaos run committed {args.requests}/{args.requests}, "
          f"replica {victim} recovered, logs prefix-consistent "
          f"({caught_up}/{REPLICAS} fully caught up)")
    return 0


def run_volatile(cluster, args):
    """The negative experiment: a wiped restart must fork the log."""
    # A view change would move primacy off the victim during its outage and
    # defuse the experiment; park it beyond the run's horizon.
    vc = ["--vc-timeout-ticks", str(args.timeout_s * 2 * 5000)]  # ticks@200us
    victim = 0  # the view-0 primary: its counter stream is the log
    held_back = 3  # the fresh peer that will accept the rewound stream

    for pid in range(REPLICAS):
        if pid == held_back:
            continue
        cluster.launch(pid, vc + ["--durable-dir",
                                  cluster.durable_dir(pid)])
    time.sleep(0.3)
    if not check_alive(cluster, [0, 1, 2]):
        return 1

    client = cluster.launch(
        REPLICAS, ["--max-attempts", "40", "--think-ticks", "1500"])
    del cluster.procs[REPLICAS]

    time.sleep(args.kill_after_s)
    print(f"chaos: kill -9 replica {victim} (the primary)")
    cluster.kill9(victim)
    # Power loss without durable state: the image is gone, the counter
    # rewinds. The held-back replica starts fresh alongside it — the only
    # peer whose expected counter matches the rewound stream.
    shutil.rmtree(cluster.durable_dir(victim), ignore_errors=True)
    time.sleep(args.restart_after_s)
    print(f"chaos: restarting replica {victim} with wiped durable state, "
          f"starting fresh replica {held_back}")
    cluster.launch(victim, vc + ["--volatile-usig", "--durable-dir",
                                 cluster.durable_dir(victim)])
    cluster.launch(held_back, vc)

    # The client may or may not complete on the forked branch — the
    # experiment's observable is the fork itself, so just let the workload
    # play out for a while.
    try:
        client.communicate(timeout=args.timeout_s + 30)
    except subprocess.TimeoutExpired:
        client.kill()
        client.communicate()

    time.sleep(1.0)
    if not cluster.reap_replicas():
        return 1
    conflicts = chain_conflicts(cluster.reports)
    if not conflicts:
        print("error: volatile-counter restart produced NO fork — the "
              "negative experiment lost its teeth (or the kill window "
              "missed all in-flight slots; try --kill-after-s)",
              file=sys.stderr)
        return 1
    print(f"ok: volatile-counter restart forked the log as predicted: "
          f"divergent chain digests at {conflicts}")
    return 0


def run_no_replicas(cluster, args):
    """Satellite regression: a client with no cluster must exit 3 fast."""
    rc, out = run_client(
        cluster, ["--max-attempts", "5", "--timeout-s",
                  str(args.timeout_s)])
    if rc is None:
        return 1
    m = re.search(r"completed=(\d+) gave_up=(\d+)", out)
    if rc != 3 or not m or int(m.group(2)) != args.requests:
        print(f"error: expected exit 3 with gave_up={args.requests}, got "
              f"rc={rc}, report: {m.group(0) if m else 'missing'}",
              file=sys.stderr)
        return 1
    print(f"ok: clientless-cluster run gave up cleanly "
          f"(gave_up={m.group(2)}, exit 3)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", default="build/examples/minbft_kv")
    parser.add_argument("--requests", type=int, default=12)
    parser.add_argument("--timeout-s", type=int, default=90)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--fault-plan", default="",
                        help="FaultPlan text file (default: a built-in "
                             "mild plan; default mode only)")
    parser.add_argument("--kill-after-s", type=float, default=1.5,
                        help="workload time before the kill -9")
    parser.add_argument("--restart-after-s", type=float, default=0.7,
                        help="outage duration before the restart")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--volatile", action="store_true",
                      help="negative experiment: wiped restart must fork")
    mode.add_argument("--no-replicas", action="store_true",
                      help="client give-up regression (zero replicas)")
    args = parser.parse_args()

    binary = os.path.abspath(args.binary)
    if not os.access(binary, os.X_OK) and not os.path.isabs(args.binary):
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        binary = os.path.join(repo_root, args.binary)
    if not os.access(binary, os.X_OK):
        print(f"error: {binary} not found or not executable "
              "(build the repo first)", file=sys.stderr)
        return 1
    args.binary = binary

    with tempfile.TemporaryDirectory(prefix="unidir-chaos-") as workdir:
        cluster = Cluster(args, workdir)
        try:
            if args.no_replicas:
                return run_no_replicas(cluster, args)
            if args.volatile:
                return run_volatile(cluster, args)
            return run_durable(cluster, args)
        finally:
            cluster.kill_all()


if __name__ == "__main__":
    sys.exit(main())
