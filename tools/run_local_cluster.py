#!/usr/bin/env python3
"""Launch a real MinBFT cluster on loopback and assert commit progress.

Spawns R replica processes plus one client of examples/minbft_kv (the real
UDP mode behind the runtime boundary), waits for the client to drive its
closed-loop workload to completion, then tears the replicas down with
SIGTERM and checks their exit reports. Stdlib-only; used by CI as the
"does the binary actually work as separate OS processes" gate that no
in-process test can provide.

Usage:
    python3 tools/run_local_cluster.py [--binary build/examples/minbft_kv]
        [--replicas 4] [--requests 8] [--timeout-s 60]
        [--shards 1] [--recv-batch 32] [--send-batch 64]

--shards/--recv-batch/--send-batch are passed through to every process:
CI runs the cluster once with defaults and once with --shards 2 to cover
the sharded event loops across real OS processes.

Exit status: the client's (0 iff every request committed), or 1 on
launch/teardown failures.
"""

import argparse
import os
import re
import signal
import socket
import subprocess
import sys
import time


def free_ports(n):
    """Reserve n distinct UDP ports by binding ephemeral sockets.

    The sockets are closed right before launch, so a tiny reuse race
    remains — fine on a CI box where nothing else churns UDP ports.
    """
    socks = [socket.socket(socket.AF_INET, socket.SOCK_DGRAM) for _ in range(n)]
    for s in socks:
        s.bind(("127.0.0.1", 0))
    ports = [s.getsockname()[1] for s in socks]
    for s in socks:
        s.close()
    return ports


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", default="build/examples/minbft_kv")
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--timeout-s", type=int, default=60)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--recv-batch", type=int, default=32)
    parser.add_argument("--send-batch", type=int, default=64)
    args = parser.parse_args()

    binary = os.path.abspath(args.binary)
    if not os.access(binary, os.X_OK) and not os.path.isabs(args.binary):
        # Relative path: also try against the repo root, so the script
        # works from any cwd.
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        binary = os.path.join(repo_root, args.binary)
    if not os.access(binary, os.X_OK):
        print(f"error: {binary} not found or not executable "
              "(build the repo first)", file=sys.stderr)
        return 1

    total = args.replicas + 1  # + the client, the highest id
    ports = free_ports(total)
    peers = ",".join(f"127.0.0.1:{p}" for p in ports)

    def cmd(pid):
        return [
            binary,
            "--id", str(pid),
            "--listen", f"127.0.0.1:{ports[pid]}",
            "--peers", peers,
            "--replicas", str(args.replicas),
            "--requests", str(args.requests),
            "--seed", str(args.seed),
            "--timeout-s", str(args.timeout_s),
            "--shards", str(args.shards),
            "--recv-batch", str(args.recv_batch),
            "--send-batch", str(args.send_batch),
        ]

    replicas = []
    try:
        for pid in range(args.replicas):
            replicas.append(subprocess.Popen(
                cmd(pid), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True))
        # Replicas bind before printing their banner; a beat is enough for
        # all sockets to exist (and UDP loss is retried anyway).
        time.sleep(0.3)
        for pid, proc in enumerate(replicas):
            if proc.poll() is not None:
                print(f"error: replica {pid} exited early "
                      f"(rc={proc.returncode})", file=sys.stderr)
                print(proc.stdout.read(), file=sys.stderr)
                return 1

        client = subprocess.Popen(
            cmd(args.replicas), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        try:
            # The client enforces --timeout-s itself; the margin here only
            # covers process startup, so a hang still fails loudly.
            client_out, _ = client.communicate(timeout=args.timeout_s + 30)
        except subprocess.TimeoutExpired:
            client.kill()
            client_out, _ = client.communicate()
            print("error: client timed out", file=sys.stderr)
            print(client_out, file=sys.stderr)
            return 1
        sys.stdout.write(client_out)

        m = re.search(r"completed=(\d+) gave_up=(\d+)", client_out)
        if not m:
            print("error: client printed no completion report",
                  file=sys.stderr)
            return 1
        completed, gave_up = int(m.group(1)), int(m.group(2))
        if completed < args.requests or gave_up:
            print(f"error: commit progress check failed: "
                  f"completed={completed}/{args.requests} gave_up={gave_up}",
                  file=sys.stderr)
            return client.returncode or 1

        # Orderly teardown: SIGTERM makes each replica print its final
        # executed count; at least f+1 must have executed the full workload
        # (the commit quorum — the rest may lag, that is the protocol).
        caught_up = 0
        for pid, proc in enumerate(replicas):
            proc.send_signal(signal.SIGTERM)
        for pid, proc in enumerate(replicas):
            try:
                out, _ = proc.communicate(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                out, _ = proc.communicate()
                print(f"error: replica {pid} ignored SIGTERM",
                      file=sys.stderr)
                return 1
            sys.stdout.write(out)
            rm = re.search(r"executed=(\d+)", out)
            if rm and int(rm.group(1)) >= args.requests:
                caught_up += 1
        f = (args.replicas - 1) // 2
        if caught_up < f + 1:
            print(f"error: only {caught_up} replicas executed all "
                  f"{args.requests} commands (need >= f+1 = {f + 1})",
                  file=sys.stderr)
            return 1

        print(f"ok: {completed}/{args.requests} committed, "
              f"{caught_up}/{args.replicas} replicas fully caught up")
        return client.returncode
    finally:
        for proc in replicas:
            if proc.poll() is None:
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
