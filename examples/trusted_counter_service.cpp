// A fault-tolerant counter service, twice: once on MinBFT (trusted
// hardware, n = 2f+1) and once on PBFT (no trusted hardware, n = 3f+1),
// with the same client workload — making the paper's motivation concrete:
// what you buy by investing in a non-equivocation device.
//
// Build & run:  ./build/examples/trusted_counter_service
#include <cstdio>

#include "agreement/minbft.h"
#include "agreement/pbft.h"
#include "agreement/state_machines.h"
#include "sim/adversaries.h"

using namespace unidir;
using namespace unidir::agreement;

namespace {

struct Outcome {
  std::size_t replicas = 0;
  std::uint64_t completed = 0;
  std::int64_t final_value = 0;
  double mean_latency = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

template <typename MakeReplicas>
Outcome run_service(std::size_t n, std::size_t f,
                    MakeReplicas make_replicas) {
  sim::World world(/*seed=*/11,
                   std::make_unique<sim::RandomDelayAdversary>(1, 6));
  SgxUsigDirectory usigs(world.keys());
  std::vector<ProcessId> ids;
  for (ProcessId i = 0; i < n; ++i) ids.push_back(i);

  auto value_of = [](const Bytes& b) {
    return serde::decode<std::int64_t>(b);
  };
  std::int64_t last = 0;

  make_replicas(world, usigs, ids, f);

  SmrClient::Options copt;
  copt.replicas = ids;
  copt.f = f;
  auto& client = world.spawn<SmrClient>(copt);
  for (int k = 1; k <= 10; ++k)
    client.submit(CounterStateMachine::add_op(k),
                  [&last, value_of](const Bytes& r) { last = value_of(r); });
  world.start();
  world.run_to_quiescence();

  Outcome out;
  out.replicas = n;
  out.completed = client.completed();
  out.final_value = last;
  double total = 0;
  for (Time t : client.latencies()) total += static_cast<double>(t);
  out.mean_latency = total / static_cast<double>(client.latencies().size());
  out.messages = world.network().stats().messages_sent;
  out.bytes = world.network().stats().bytes_sent;
  return out;
}

void print(const char* name, const Outcome& o) {
  std::printf("  %-8s  replicas=%zu  completed=%llu/10  final=%lld  "
              "mean latency=%.1f ticks  msgs=%llu  bytes=%llu\n",
              name, o.replicas, static_cast<unsigned long long>(o.completed),
              static_cast<long long>(o.final_value), o.mean_latency,
              static_cast<unsigned long long>(o.messages),
              static_cast<unsigned long long>(o.bytes));
}

}  // namespace

int main() {
  constexpr std::size_t kF = 1;
  std::printf("replicated counter, f=%zu: sum of 1..10 must equal 55\n\n",
              kF);

  const Outcome minbft = run_service(
      2 * kF + 1, kF,
      [](sim::World& w, UsigDirectory& usigs,
         const std::vector<ProcessId>& ids, std::size_t f) {
        MinBftReplica::Options o;
        o.replicas = ids;
        o.f = f;
        for (std::size_t i = 0; i < ids.size(); ++i)
          w.spawn<MinBftReplica>(o, usigs,
                                 std::make_unique<CounterStateMachine>());
      });

  const Outcome pbft = run_service(
      3 * kF + 1, kF,
      [](sim::World& w, UsigDirectory&, const std::vector<ProcessId>& ids,
         std::size_t f) {
        PbftReplica::Options o;
        o.replicas = ids;
        o.f = f;
        for (std::size_t i = 0; i < ids.size(); ++i)
          w.spawn<PbftReplica>(o, std::make_unique<CounterStateMachine>());
      });

  print("MinBFT", minbft);
  print("PBFT", pbft);

  std::printf("\ntrusted hardware saved %zu replica(s), %.0f%% of the "
              "messages, and %.1f ticks of latency per op\n",
              pbft.replicas - minbft.replicas,
              100.0 * (1.0 - static_cast<double>(minbft.messages) /
                                 static_cast<double>(pbft.messages)),
              pbft.mean_latency - minbft.mean_latency);

  const bool ok = minbft.completed == 10 && pbft.completed == 10 &&
                  minbft.final_value == 55 && pbft.final_value == 55;
  return ok ? 0 : 1;
}
