// Schedule explorer CLI: seeded sweeps over {protocol × adversary × crash
// plan} with record → check → shrink → replay on every invariant
// violation.
//
// With no flags this runs two phases:
//   1. a small clean sweep (standard SMR invariants — expected to pass);
//   2. the same sweep with a deliberately broken invariant injected
//      (bounded-executions), demonstrating what a finding looks like: the
//      shrunken scenario, the minimized schedule trace, and copy-pasteable
//      replay instructions with the hex-encoded artifacts.
//
// Build & run:  ./build/examples/explore
//
//   --protocol  minbft | pbft | both          (default both)
//   --adversary random-delay | duplicating | gst | all   (default all)
//   --seeds N        seeds per (protocol, adversary) pair (default 5)
//   --seed-base N    first seed (default 1)
//   --no-shrink      keep findings unshrunk
//   --inject-bug     only run the injected-bug phase
//   --dump DIR       write each finding's trace/metrics/repro files (default .)
//   --no-dump        keep findings on stdout only
//
// Exit status is nonzero iff a sweep with the *standard* invariants finds
// a violation — injected-bug findings are the expected demo output.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "explore/explorer.h"

using namespace unidir::explore;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [--protocol minbft|pbft|both] "
      "[--adversary random-delay|duplicating|gst|all]\n"
      "          [--seeds N] [--seed-base N] [--threads N] [--no-shrink] "
      "[--inject-bug] [--dump DIR | --no-dump]\n"
      "  --threads N   record-phase worker threads (0 = all cores, "
      "default 1);\n"
      "                findings are identical at any thread count\n"
      "  --dump DIR    write <DIR>/<prefix>-finding-<k>.{trace.json,"
      "metrics.txt,repro.txt}\n"
      "                for every finding (default: current directory)\n",
      argv0);
  std::exit(2);
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "  !! cannot write %s\n", path.c_str());
    return;
  }
  out << content;
  std::printf("  wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

/// Drops each finding's artifacts next to the repro hex: the Chrome-trace
/// JSON (open in chrome://tracing or Perfetto), the metrics snapshot, and
/// the replay snippet itself.
void dump_findings(const ExplorationReport& report, const std::string& dir,
                   const std::string& prefix) {
  if (report.findings.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "  !! cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return;
  }
  for (std::size_t k = 0; k < report.findings.size(); ++k) {
    const Finding& f = report.findings[k];
    const std::string base =
        dir + "/" + prefix + "-finding-" + std::to_string(k);
    write_file(base + ".trace.json", f.trace_json);
    write_file(base + ".metrics.txt", f.metrics_text);
    write_file(base + ".repro.txt", f.replay_snippet());
  }
}

ExplorationReport sweep(const SweepPlan& plan, const InvariantRegistry& reg) {
  const ExplorationReport report = Explorer(plan, reg).run();
  std::printf("  %s\n", report.summary().c_str());
  for (const Finding& f : report.findings) {
    std::puts("");
    std::printf("%s", f.replay_snippet().c_str());
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  SweepPlan plan;
  plan.protocols = {ProtocolKind::MinBft, ProtocolKind::Pbft};
  plan.adversaries = {AdversaryKind::RandomDelay, AdversaryKind::Duplicating,
                      AdversaryKind::Gst};
  plan.seeds = 5;
  bool inject_only = false;
  bool dump = true;
  std::string dump_dir = ".";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--protocol") {
      const std::string v = value();
      if (v == "minbft")
        plan.protocols = {ProtocolKind::MinBft};
      else if (v == "pbft")
        plan.protocols = {ProtocolKind::Pbft};
      else if (v == "both")
        plan.protocols = {ProtocolKind::MinBft, ProtocolKind::Pbft};
      else
        usage(argv[0]);
    } else if (arg == "--adversary") {
      const std::string v = value();
      if (v == "random-delay")
        plan.adversaries = {AdversaryKind::RandomDelay};
      else if (v == "duplicating")
        plan.adversaries = {AdversaryKind::Duplicating};
      else if (v == "gst")
        plan.adversaries = {AdversaryKind::Gst};
      else if (v == "all")
        plan.adversaries = {AdversaryKind::RandomDelay,
                            AdversaryKind::Duplicating, AdversaryKind::Gst};
      else
        usage(argv[0]);
    } else if (arg == "--seeds") {
      plan.seeds = std::strtoull(value().c_str(), nullptr, 10);
      if (plan.seeds == 0) usage(argv[0]);
    } else if (arg == "--seed-base") {
      plan.seed_base = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      plan.threads = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--no-shrink") {
      plan.shrink = false;
    } else if (arg == "--inject-bug") {
      inject_only = true;
    } else if (arg == "--dump") {
      dump = true;
      dump_dir = value();
    } else if (arg == "--no-dump") {
      dump = false;
    } else {
      usage(argv[0]);
    }
  }

  int status = 0;

  if (!inject_only) {
    std::puts("== sweep with the standard SMR invariant registry ==");
    std::puts("   (prefix consistency, digest equality, client completion)");
    const ExplorationReport clean =
        sweep(plan, InvariantRegistry::standard_smr());
    if (dump) dump_findings(clean, dump_dir, "explore");
    if (!clean.findings.empty()) {
      std::puts("!! the standard invariants should hold — this is a real bug");
      status = 1;
    }
    std::puts("");
  }

  std::puts("== demo: the same sweep with an injected broken invariant ==");
  std::puts("   (bounded-executions: \"no replica may execute > 2 commands\"");
  std::puts("    — guaranteed to fail, so you can see a finding end-to-end)");
  InvariantRegistry buggy = InvariantRegistry::standard_smr();
  buggy.add(bounded_executions(2));
  SweepPlan demo = plan;
  demo.protocols = {plan.protocols.front()};
  demo.adversaries = {plan.adversaries.front()};
  demo.seeds = inject_only ? plan.seeds : 1;
  const ExplorationReport demo_report = sweep(demo, buggy);
  if (dump) dump_findings(demo_report, dump_dir, "explore-demo");
  if (demo_report.findings.empty()) {
    std::puts("!! injected bug produced no finding — explorer is broken");
    status = 1;
  }

  std::puts("");
  std::puts("every finding above ends with a replay snippet: paste the two");
  std::puts("hex strings into ScenarioSpec::from_hex / ScheduleTrace::from_hex");
  std::puts("and run_scenario(..., RunMode::Replay, &trace) reproduces the");
  std::puts("violation byte-for-byte. see EXPERIMENTS.md, record->replay->shrink.");
  return status;
}
