// The paper's separation, live: trusted logs (SRB) cannot give you
// unidirectional communication.
//
// Constructs the three scenarios of Section 4.1 in the simulator, prints
// what each group of processes observes, and shows (a) that the scenarios
// are indistinguishable exactly as the proof requires, and (b) the
// resulting unidirectionality violation in Scenario 3. Then runs the f=1
// corner case, where reliable broadcast CAN build a unidirectional round.
//
// Build & run:  ./build/examples/separation_demo
#include <cstdio>

#include "broadcast/rb_uni_round.h"
#include "broadcast/srb_hub.h"
#include "core/separation.h"
#include "rounds/checkers.h"
#include "sim/adversaries.h"

using namespace unidir;

namespace {

void print_flag(const char* label, bool ok) {
  std::printf("    %-58s %s\n", label, ok ? "CONFIRMED" : "** FAILED **");
}

class RoundRunner final : public sim::Process {
 public:
  std::unique_ptr<broadcast::RbUniRoundDriver> driver;
  void on_start() override {
    driver->start_round(bytes_of("round-1 message"), nullptr);
  }
};

}  // namespace

int main() {
  std::puts("THE SEPARATION (Section 4.1): SRB =/=> unidirectionality");
  std::puts("  n = 7, f = 2; Q = {0..4}, C1 = {5}, C2 = {6}");
  std::puts("  Scenario 1: C1 crashed, C2->Q delayed forever");
  std::puts("  Scenario 2: C2 crashed, C1->Q delayed forever");
  std::puts("  Scenario 3: nobody faulty, all C1/C2 outbound delayed\n");

  const auto r = core::run_srb_uni_separation(/*n=*/7, /*f=*/2, /*seed=*/1);
  print_flag("every correct process finished its round", r.rounds_completed);
  print_flag("Q cannot tell Scenario 1 from Scenario 3",
             r.q_cannot_tell_1_from_3);
  print_flag("Q cannot tell Scenario 2 from Scenario 3",
             r.q_cannot_tell_2_from_3);
  print_flag("C1 cannot tell Scenario 2 from Scenario 3",
             r.c1_cannot_tell_2_from_3);
  print_flag("C2 cannot tell Scenario 1 from Scenario 3",
             r.c2_cannot_tell_1_from_3);
  print_flag("Scenario 3: C1, C2 both correct, neither heard the other",
             r.unidirectionality_violated);
  std::printf("\n  => theorem %s\n\n",
              r.holds() ? "REPRODUCED: non-equivocation alone cannot break "
                          "a network partition"
                        : "FAILED to reproduce");

  std::puts("THE CORNER CASE (Appendix): f=1, n>=3 — RB => unidirectionality");
  std::puts("  n = 4; the direct links between processes 0 and 1 are cut;");
  std::puts("  the two-phase forwarding protocol relays through the rest:\n");
  {
    auto adversary = std::make_unique<sim::PartitionAdversary>();
    adversary->block_bidirectional({0}, {1});
    sim::World w(/*seed=*/5, std::move(adversary));
    broadcast::SrbHub hub(w, /*channel=*/1);
    std::vector<RoundRunner*> runners;
    for (int i = 0; i < 4; ++i) runners.push_back(&w.spawn<RoundRunner>());
    for (auto* runner : runners)
      runner->driver = std::make_unique<broadcast::RbUniRoundDriver>(*runner,
                                                                     hub);
    w.start();
    w.run_to_quiescence();

    std::vector<rounds::ProcessHistory> hist;
    for (auto* runner : runners)
      hist.push_back(rounds::history_of(runner->id(), *runner->driver));
    const auto violation = rounds::check_unidirectional(hist);
    const auto& rec0 = runners[0]->driver->history().at(0);
    const auto& rec1 = runners[1]->driver->history().at(0);
    const bool p0_heard_p1 = rounds::received_from(hist[0], 1, 1);
    const bool p1_heard_p0 = rounds::received_from(hist[1], 0, 1);
    std::printf("    process 0 received round-1 messages from %zu peers "
                "(heard p1: %s)\n",
                rec0.received.size(), p0_heard_p1 ? "yes" : "no");
    std::printf("    process 1 received round-1 messages from %zu peers "
                "(heard p0: %s)\n",
                rec1.received.size(), p1_heard_p0 ? "yes" : "no");
    print_flag("unidirectionality holds despite the severed pair",
               !violation.has_value());
    std::printf("\n  => with a single fault, the relays smuggle at least one "
                "direction through.\n");
    return (r.holds() && !violation.has_value()) ? 0 : 1;
  }
}
