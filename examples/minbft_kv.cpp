// A Byzantine fault tolerant key-value store on trusted hardware.
//
// Two modes, same protocol code either way (the point of the runtime
// boundary):
//
//   Simulation (no arguments):  ./build/examples/minbft_kv
//     Runs a MinBFT replica group (n = 2f+1 = 3, each replica holding a
//     simulated SGX USIG enclave), serves a client workload, then crashes
//     the primary mid-run and shows the view change recovering — all
//     inside the deterministic simulator.
//
//   Real deployment (one OS process per flag set):
//     ./build/examples/minbft_kv --id 0 --listen 127.0.0.1:9000
//         --peers 127.0.0.1:9000,...,127.0.0.1:9004 --replicas 4
//     The peer list is the membership: entry i is process i's UDP
//     endpoint. Ids [0, --replicas) run MinBFT replicas; the remaining
//     ids run closed-loop clients submitting --requests PUT/GET commands.
//     Replicas serve until SIGINT/SIGTERM; a client exits 0 iff every
//     request committed. All processes must share --seed: provisioning
//     derives every process's keys from it, which is what lets USIG
//     attestations verify across machine boundaries with no key exchange.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "agreement/minbft.h"
#include "agreement/state_machines.h"
#include "runtime/real_runtime.h"
#include "sim/adversaries.h"
#include "wire/channels.h"

using namespace unidir;
using namespace unidir::agreement;

namespace {

// ---- simulation mode (the original demo, unchanged) ------------------------

int run_sim_demo() {
  constexpr std::size_t kF = 1;
  constexpr std::size_t kN = 2 * kF + 1;

  sim::World world(/*seed=*/7,
                   std::make_unique<sim::RandomDelayAdversary>(1, 6));
  SgxUsigDirectory usigs(world.keys());

  MinBftReplica::Options options;
  options.f = kF;
  for (ProcessId i = 0; i < kN; ++i) options.replicas.push_back(i);

  std::vector<MinBftReplica*> replicas;
  for (std::size_t i = 0; i < kN; ++i)
    replicas.push_back(&world.spawn<MinBftReplica>(
        options, usigs, std::make_unique<KvStateMachine>()));

  SmrClient::Options copt;
  copt.replicas = options.replicas;
  copt.f = kF;
  auto& client = world.spawn<SmrClient>(copt);

  std::printf("MinBFT KV store: n=%zu replicas tolerate f=%zu Byzantine "
              "(PBFT would need %zu)\n\n",
              kN, kF, 3 * kF + 1);

  auto put = [&](std::string key, std::string value) {
    client.submit(KvStateMachine::put_op(key, value),
                  [key, value, &world](const Bytes&) {
                    std::printf("  t=%-5llu PUT %s=%s committed\n",
                                static_cast<unsigned long long>(world.now()),
                                key.c_str(), value.c_str());
                  });
  };
  auto get = [&](std::string key) {
    client.submit(KvStateMachine::get_op(key),
                  [key, &world](const Bytes& result) {
                    std::printf("  t=%-5llu GET %s -> \"%s\"\n",
                                static_cast<unsigned long long>(world.now()),
                                key.c_str(), string_of(result).c_str());
                  });
  };

  put("language", "c++20");
  put("paper", "classifying trusted hardware");
  get("language");
  put("venue", "PODC 2021");
  get("venue");

  world.start();
  // Serve the first couple of requests under the original primary…
  world.run_until([&] { return client.completed() >= 2; });
  std::printf("\n  t=%-5llu *** crashing the primary (replica 0) ***\n\n",
              static_cast<unsigned long long>(world.now()));
  world.crash(0);
  world.run_to_quiescence();

  std::puts("");
  std::printf("client completed %llu/5 requests\n",
              static_cast<unsigned long long>(client.completed()));
  for (auto* r : replicas) {
    if (!world.correct(r->id())) continue;
    std::printf("replica %u: view=%llu, executed %llu commands, state "
                "digest %s…\n",
                r->id(), static_cast<unsigned long long>(r->view()),
                static_cast<unsigned long long>(r->executed_count()),
                to_hex(ByteSpan(r->state_digest().data(), 8)).c_str());
  }

  // The safety property, checked explicitly:
  std::vector<std::pair<ProcessId, const ExecutionLog*>> logs;
  for (auto* r : replicas)
    if (world.correct(r->id()))
      logs.emplace_back(r->id(), &r->execution_log());
  const auto divergence = check_execution_consistency(logs);
  std::printf("execution logs prefix-consistent: %s\n",
              divergence ? divergence->c_str() : "yes");

  // The typed wire layer accounts every protocol message by channel and
  // type — no instrumentation in the protocol code itself.
  std::puts("\nwire traffic on the MinBFT protocol channel:");
  const wire::ChannelStats& ws = world.wire_stats().channel(wire::kMinBftCh);
  for (const auto& [tag, t] : ws.types)
    std::printf("  %-18s sent=%-4llu received=%-4llu bytes_sent=%llu\n",
                t.name, static_cast<unsigned long long>(t.sent),
                static_cast<unsigned long long>(t.received),
                static_cast<unsigned long long>(t.bytes_sent));
  std::printf("  dropped: malformed=%llu unknown_tag=%llu filtered=%llu\n",
              static_cast<unsigned long long>(ws.dropped_malformed),
              static_cast<unsigned long long>(ws.dropped_unknown_tag),
              static_cast<unsigned long long>(ws.dropped_filtered));
  return divergence ? 1 : 0;
}

// ---- real mode -------------------------------------------------------------

// SIGINT/SIGTERM request shutdown. The flag is only ever read by run_until
// predicates, which the loop re-checks at least every 50ms wait slice —
// nothing async-signal-unsafe happens in the handler itself.
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct RealConfig {
  ProcessId id = 0;
  std::string listen;
  std::vector<std::string> peers;  // entry i = process i's ip:port
  std::size_t replicas = 4;
  std::uint64_t requests = 8;
  std::uint64_t tick_us = 200;  // 0.2ms: protocol tick constants -> wall time
  std::uint64_t seed = 7;
  std::uint64_t timeout_s = 30;  // client-side wall-clock give-up
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s                     (deterministic simulation demo)\n"
      "       %s --id I --listen IP:PORT --peers IP:PORT,IP:PORT,...\n"
      "          [--replicas R] [--requests N] [--tick-us T] [--seed S]\n"
      "          [--timeout-s W]   (one real UDP process of a cluster)\n"
      "peer list entry i is process i's endpoint; ids [0,R) are replicas,\n"
      "the rest are clients. Every process must get the same --peers,\n"
      "--replicas and --seed.\n",
      argv0, argv0);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_args(int argc, char** argv, RealConfig& cfg) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--id" && (v = value()))
      cfg.id = static_cast<ProcessId>(std::strtoul(v, nullptr, 10));
    else if (flag == "--listen" && (v = value()))
      cfg.listen = v;
    else if (flag == "--peers" && (v = value()))
      cfg.peers = split_commas(v);
    else if (flag == "--replicas" && (v = value()))
      cfg.replicas = std::strtoul(v, nullptr, 10);
    else if (flag == "--requests" && (v = value()))
      cfg.requests = std::strtoull(v, nullptr, 10);
    else if (flag == "--tick-us" && (v = value()))
      cfg.tick_us = std::strtoull(v, nullptr, 10);
    else if (flag == "--seed" && (v = value()))
      cfg.seed = std::strtoull(v, nullptr, 10);
    else if (flag == "--timeout-s" && (v = value()))
      cfg.timeout_s = std::strtoull(v, nullptr, 10);
    else {
      if (flag != "--help" && flag != "-h")
        std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
    if (v == nullptr) return false;
  }
  if (cfg.listen.empty() || cfg.peers.empty() ||
      cfg.id >= cfg.peers.size() || cfg.replicas >= cfg.peers.size() ||
      cfg.replicas < 3 || cfg.tick_us == 0) {
    std::fprintf(stderr, "need --listen, --peers with > --replicas (>= 3) "
                         "entries, and --id within the peer list\n");
    return false;
  }
  return true;
}

int run_real(const RealConfig& cfg) {
  const std::size_t total = cfg.peers.size();
  const std::size_t f = (cfg.replicas - 1) / 2;  // MinBFT: n = 2f+1

  runtime::RealRuntimeOptions ropt;
  ropt.tick_ns = cfg.tick_us * 1000;
  ropt.listen = cfg.listen;
  auto rt = std::make_unique<runtime::RealRuntime>(ropt);
  runtime::RealRuntime* control = rt.get();
  for (ProcessId p = 0; p < total; ++p) {
    if (p == cfg.id) continue;
    const std::string& ep = cfg.peers[p];
    const std::size_t colon = ep.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "peer %u is not ip:port: %s\n", p, ep.c_str());
      return 2;
    }
    control->add_peer(
        p, ep.substr(0, colon),
        static_cast<std::uint16_t>(
            std::strtoul(ep.c_str() + colon + 1, nullptr, 10)));
  }

  sim::World world(cfg.seed, std::move(rt));
  SgxUsigDirectory usigs(world.keys());
  world.provision(total);
  // Materialize replica enclaves in id order so every process derives the
  // same key registry (see DESIGN.md §13).
  for (ProcessId p = 0; p < cfg.replicas; ++p) usigs.enclave_for(p);

  MinBftReplica::Options opt;
  opt.f = f;
  for (ProcessId p = 0; p < cfg.replicas; ++p) opt.replicas.push_back(p);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  if (cfg.id < cfg.replicas) {
    auto& replica = world.spawn_at<MinBftReplica>(
        cfg.id, opt, usigs, std::make_unique<KvStateMachine>());
    world.start();
    std::printf("replica %u: listening on %s (port %u), n=%zu f=%zu\n",
                cfg.id, cfg.listen.c_str(), control->bound_port(),
                cfg.replicas, f);
    std::fflush(stdout);
    world.run_until([] { return g_stop != 0; }, SIZE_MAX);
    std::printf("replica %u: view=%llu executed=%llu digest=%s\n", cfg.id,
                static_cast<unsigned long long>(replica.view()),
                static_cast<unsigned long long>(replica.executed_count()),
                to_hex(ByteSpan(replica.state_digest().data(), 8)).c_str());
    return 0;
  }

  SmrClient::Options copt;
  copt.replicas = opt.replicas;
  copt.f = f;
  auto& client = world.spawn_at<SmrClient>(cfg.id, copt);
  for (std::uint64_t i = 0; i < cfg.requests; ++i) {
    const std::string key = "k" + std::to_string(i % 3);
    if (i % 3 == 2)
      client.submit(KvStateMachine::get_op(key));
    else
      client.submit(KvStateMachine::put_op(key, "v" + std::to_string(i)));
  }
  world.start();
  std::printf("client %u: %llu requests against %zu replicas\n", cfg.id,
              static_cast<unsigned long long>(cfg.requests), cfg.replicas);
  std::fflush(stdout);

  // Give-up timer in Clock ticks, so the predicate needs no wall clock.
  const Time deadline_ticks = cfg.timeout_s * 1'000'000 / cfg.tick_us;
  world.run_until(
      [&] {
        return g_stop != 0 ||
               client.completed() + client.gave_up() >= cfg.requests ||
               world.now() > deadline_ticks;
      },
      SIZE_MAX);

  const auto us = control->udp_stats();
  std::printf("client %u: completed=%llu gave_up=%llu frames_sent=%llu "
              "frames_received=%llu malformed=%llu\n",
              cfg.id, static_cast<unsigned long long>(client.completed()),
              static_cast<unsigned long long>(client.gave_up()),
              static_cast<unsigned long long>(us.frames_sent),
              static_cast<unsigned long long>(us.frames_received),
              static_cast<unsigned long long>(us.frames_malformed));
  return client.completed() >= cfg.requests ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc <= 1) return run_sim_demo();
  RealConfig cfg;
  if (!parse_args(argc, argv, cfg)) {
    usage(argv[0]);
    return 2;
  }
  return run_real(cfg);
}
