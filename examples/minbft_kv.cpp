// A Byzantine fault tolerant key-value store on trusted hardware.
//
// Two modes, same protocol code either way (the point of the runtime
// boundary):
//
//   Simulation (no arguments):  ./build/examples/minbft_kv
//     Runs a MinBFT replica group (n = 2f+1 = 3, each replica holding a
//     simulated SGX USIG enclave), serves a client workload, then crashes
//     the primary mid-run and shows the view change recovering — all
//     inside the deterministic simulator.
//
//   Real deployment (one OS process per flag set):
//     ./build/examples/minbft_kv --id 0 --listen 127.0.0.1:9000
//         --peers 127.0.0.1:9000,...,127.0.0.1:9004 --replicas 4
//     The peer list is the membership: entry i is process i's UDP
//     endpoint. Ids [0, --replicas) run MinBFT replicas; the remaining
//     ids run closed-loop clients submitting --requests PUT/GET commands.
//     Replicas serve until SIGINT/SIGTERM; a client exits 0 iff every
//     request committed. All processes must share --seed: provisioning
//     derives every process's keys from it, which is what lets USIG
//     attestations verify across machine boundaries with no key exchange.
//   Chaos extensions (real mode; see DESIGN.md §14 and
//   tools/run_chaos_cluster.py):
//     --durable-dir DIR   persist replica state (protocol image + sealed
//                         USIG counter) in a runtime::FileDurableStore; a
//                         kill -9'd replica restarted with the same DIR
//                         recovers from disk and rejoins via state transfer
//     --volatile-usig     do NOT persist/reload the USIG counter (the PR-4
//                         negative experiment: restarts rewind the counter
//                         and the log can fork)
//     --fault-plan FILE   runtime::FaultPlan text file: seeded drop/delay/
//                         duplicate/corrupt rates and partition epochs
//     --max-attempts N    client give-up bound (0 = retry forever); an
//                         abandoned request makes the client exit 3
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "agreement/minbft.h"
#include "agreement/state_machines.h"
#include "runtime/durable_file.h"
#include "runtime/fault.h"
#include "runtime/real_runtime.h"
#include "sim/adversaries.h"
#include "wire/channels.h"

using namespace unidir;
using namespace unidir::agreement;

namespace {

// ---- simulation mode (the original demo, unchanged) ------------------------

int run_sim_demo() {
  constexpr std::size_t kF = 1;
  constexpr std::size_t kN = 2 * kF + 1;

  sim::World world(/*seed=*/7,
                   std::make_unique<sim::RandomDelayAdversary>(1, 6));
  SgxUsigDirectory usigs(world.keys());

  MinBftReplica::Options options;
  options.f = kF;
  for (ProcessId i = 0; i < kN; ++i) options.replicas.push_back(i);

  std::vector<MinBftReplica*> replicas;
  for (std::size_t i = 0; i < kN; ++i)
    replicas.push_back(&world.spawn<MinBftReplica>(
        options, usigs, std::make_unique<KvStateMachine>()));

  SmrClient::Options copt;
  copt.replicas = options.replicas;
  copt.f = kF;
  auto& client = world.spawn<SmrClient>(copt);

  std::printf("MinBFT KV store: n=%zu replicas tolerate f=%zu Byzantine "
              "(PBFT would need %zu)\n\n",
              kN, kF, 3 * kF + 1);

  auto put = [&](std::string key, std::string value) {
    client.submit(KvStateMachine::put_op(key, value),
                  [key, value, &world](const Bytes&) {
                    std::printf("  t=%-5llu PUT %s=%s committed\n",
                                static_cast<unsigned long long>(world.now()),
                                key.c_str(), value.c_str());
                  });
  };
  auto get = [&](std::string key) {
    client.submit(KvStateMachine::get_op(key),
                  [key, &world](const Bytes& result) {
                    std::printf("  t=%-5llu GET %s -> \"%s\"\n",
                                static_cast<unsigned long long>(world.now()),
                                key.c_str(), string_of(result).c_str());
                  });
  };

  put("language", "c++20");
  put("paper", "classifying trusted hardware");
  get("language");
  put("venue", "PODC 2021");
  get("venue");

  world.start();
  // Serve the first couple of requests under the original primary…
  world.run_until([&] { return client.completed() >= 2; });
  std::printf("\n  t=%-5llu *** crashing the primary (replica 0) ***\n\n",
              static_cast<unsigned long long>(world.now()));
  world.crash(0);
  world.run_to_quiescence();

  std::puts("");
  std::printf("client completed %llu/5 requests\n",
              static_cast<unsigned long long>(client.completed()));
  for (auto* r : replicas) {
    if (!world.correct(r->id())) continue;
    std::printf("replica %u: view=%llu, executed %llu commands, state "
                "digest %s…\n",
                r->id(), static_cast<unsigned long long>(r->view()),
                static_cast<unsigned long long>(r->executed_count()),
                to_hex(ByteSpan(r->state_digest().data(), 8)).c_str());
  }

  // The safety property, checked explicitly:
  std::vector<std::pair<ProcessId, const ExecutionLog*>> logs;
  for (auto* r : replicas)
    if (world.correct(r->id()))
      logs.emplace_back(r->id(), &r->execution_log());
  const auto divergence = check_execution_consistency(logs);
  std::printf("execution logs prefix-consistent: %s\n",
              divergence ? divergence->c_str() : "yes");

  // The typed wire layer accounts every protocol message by channel and
  // type — no instrumentation in the protocol code itself.
  std::puts("\nwire traffic on the MinBFT protocol channel:");
  const wire::ChannelStats& ws = world.wire_stats().channel(wire::kMinBftCh);
  for (const auto& [tag, t] : ws.types)
    std::printf("  %-18s sent=%-4llu received=%-4llu bytes_sent=%llu\n",
                t.name, static_cast<unsigned long long>(t.sent),
                static_cast<unsigned long long>(t.received),
                static_cast<unsigned long long>(t.bytes_sent));
  std::printf("  dropped: malformed=%llu unknown_tag=%llu filtered=%llu\n",
              static_cast<unsigned long long>(ws.dropped_malformed),
              static_cast<unsigned long long>(ws.dropped_unknown_tag),
              static_cast<unsigned long long>(ws.dropped_filtered));
  return divergence ? 1 : 0;
}

// ---- real mode -------------------------------------------------------------

// SIGINT/SIGTERM request shutdown. The flag is only ever read by run_until
// predicates, which the loop re-checks at least every 50ms wait slice —
// nothing async-signal-unsafe happens in the handler itself.
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct RealConfig {
  ProcessId id = 0;
  std::string listen;
  std::vector<std::string> peers;  // entry i = process i's ip:port
  std::size_t replicas = 4;
  std::uint64_t requests = 8;
  std::uint64_t tick_us = 200;  // 0.2ms: protocol tick constants -> wall time
  std::uint64_t seed = 7;
  std::uint64_t timeout_s = 30;  // client-side wall-clock give-up
  std::string durable_dir;       // empty: replica state is memory-only
  bool volatile_usig = false;    // skip USIG counter persistence (negative)
  std::string fault_plan;        // FaultPlan text file; empty: no faults
  std::uint64_t max_attempts = 10;  // client attempts per request; 0=forever
  std::uint64_t vc_timeout_ticks = 0;  // 0: protocol default
  std::uint64_t chain_interval = 0;  // chains= sample stride; 0: ckpt interval
  std::uint64_t think_ticks = 0;     // client gap between requests
  std::size_t shards = 1;        // event-loop shards (processes pin by id)
  std::size_t recv_batch = 32;   // datagrams per recvmmsg burst
  std::size_t send_batch = 64;   // frames coalesced per sendmmsg flush
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s                     (deterministic simulation demo)\n"
      "       %s --id I --listen IP:PORT --peers IP:PORT,IP:PORT,...\n"
      "          [--replicas R] [--requests N] [--tick-us T] [--seed S]\n"
      "          [--timeout-s W] [--durable-dir D] [--volatile-usig]\n"
      "          [--fault-plan F] [--max-attempts A] [--vc-timeout-ticks V]\n"
      "          [--chain-interval C] [--think-ticks G] [--shards K]\n"
      "          [--recv-batch B] [--send-batch B]\n"
      "          (one real UDP process of a cluster)\n"
      "peer list entry i is process i's endpoint; ids [0,R) are replicas,\n"
      "the rest are clients. Every process must get the same --peers,\n"
      "--replicas and --seed. A replica restarted with its previous\n"
      "--durable-dir recovers from disk; clients exit 3 when any request\n"
      "exhausted --max-attempts. Any process exits 4 if its UDP receiver\n"
      "dies (it would otherwise keep running deaf).\n",
      argv0, argv0);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_args(int argc, char** argv, RealConfig& cfg) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--id" && (v = value()))
      cfg.id = static_cast<ProcessId>(std::strtoul(v, nullptr, 10));
    else if (flag == "--listen" && (v = value()))
      cfg.listen = v;
    else if (flag == "--peers" && (v = value()))
      cfg.peers = split_commas(v);
    else if (flag == "--replicas" && (v = value()))
      cfg.replicas = std::strtoul(v, nullptr, 10);
    else if (flag == "--requests" && (v = value()))
      cfg.requests = std::strtoull(v, nullptr, 10);
    else if (flag == "--tick-us" && (v = value()))
      cfg.tick_us = std::strtoull(v, nullptr, 10);
    else if (flag == "--seed" && (v = value()))
      cfg.seed = std::strtoull(v, nullptr, 10);
    else if (flag == "--timeout-s" && (v = value()))
      cfg.timeout_s = std::strtoull(v, nullptr, 10);
    else if (flag == "--durable-dir" && (v = value()))
      cfg.durable_dir = v;
    else if (flag == "--volatile-usig") {
      cfg.volatile_usig = true;
      v = "";  // valueless flag; satisfy the missing-value check below
    }
    else if (flag == "--fault-plan" && (v = value()))
      cfg.fault_plan = v;
    else if (flag == "--max-attempts" && (v = value()))
      cfg.max_attempts = std::strtoull(v, nullptr, 10);
    else if (flag == "--vc-timeout-ticks" && (v = value()))
      cfg.vc_timeout_ticks = std::strtoull(v, nullptr, 10);
    else if (flag == "--chain-interval" && (v = value()))
      cfg.chain_interval = std::strtoull(v, nullptr, 10);
    else if (flag == "--think-ticks" && (v = value()))
      cfg.think_ticks = std::strtoull(v, nullptr, 10);
    else if (flag == "--shards" && (v = value()))
      cfg.shards = std::strtoul(v, nullptr, 10);
    else if (flag == "--recv-batch" && (v = value()))
      cfg.recv_batch = std::strtoul(v, nullptr, 10);
    else if (flag == "--send-batch" && (v = value()))
      cfg.send_batch = std::strtoul(v, nullptr, 10);
    else {
      if (flag != "--help" && flag != "-h")
        std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
    if (v == nullptr) return false;
  }
  if (cfg.listen.empty() || cfg.peers.empty() ||
      cfg.id >= cfg.peers.size() || cfg.replicas >= cfg.peers.size() ||
      cfg.replicas < 3 || cfg.tick_us == 0) {
    std::fprintf(stderr, "need --listen, --peers with > --replicas (>= 3) "
                         "entries, and --id within the peer list\n");
    return false;
  }
  return true;
}

/// Sampled chain digests of the execution log, "count:hex8" at every
/// checkpoint-interval boundary plus the head — what the chaos harness
/// compares across replicas for prefix consistency (matching counts must
/// have matching digests; see ExecutionLog::digest_through).
std::string chain_samples(const ExecutionLog& log, std::uint64_t interval) {
  std::ostringstream os;
  bool first = true;
  auto emit = [&](std::uint64_t count) {
    if (!first) os << ",";
    first = false;
    const crypto::Digest d = log.digest_through(count);
    os << count << ":" << to_hex(ByteSpan(d.data(), 8));
  };
  // Start at the first interval boundary not pruned away (count 0 is the
  // shared zero anchor — no information, skip it).
  std::uint64_t at = (log.base() + interval - 1) / interval * interval;
  if (at == 0) at = interval;
  for (; at <= log.size(); at += interval) emit(at);
  if (log.size() % interval != 0 || log.size() < log.base() + 1)
    emit(log.size());
  return os.str();
}

int run_real(const RealConfig& cfg) {
  const std::size_t total = cfg.peers.size();
  const std::size_t f = (cfg.replicas - 1) / 2;  // MinBFT: n = 2f+1

  // The fault plan applies at two layers: frame-level tx corruption inside
  // the runtime (so damage hits the wire format and dies in the peer's
  // hardened frame decoder) and drop/delay/duplicate/partition at the
  // World's transport boundary. The seed is mixed with the process id so
  // every process mangles an independent stream.
  runtime::FaultPlan plan;
  if (!cfg.fault_plan.empty()) {
    std::ifstream in(cfg.fault_plan);
    std::stringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) {
      std::fprintf(stderr, "cannot read fault plan %s\n",
                   cfg.fault_plan.c_str());
      return 2;
    }
    auto parsed = runtime::FaultPlan::parse_text(buf.str());
    if (!parsed) {
      std::fprintf(stderr, "malformed fault plan %s\n",
                   cfg.fault_plan.c_str());
      return 2;
    }
    plan = std::move(*parsed);
    plan.seed = plan.seed * 1000003 + cfg.id;
  }

  if (plan.any_faults() && cfg.shards > 1) {
    std::fprintf(stderr,
                 "--fault-plan needs --shards 1 (FaultyTransport is not "
                 "shard-safe)\n");
    return 2;
  }

  runtime::RealRuntimeOptions ropt;
  ropt.tick_ns = cfg.tick_us * 1000;
  ropt.listen = cfg.listen;
  ropt.shards = cfg.shards;
  ropt.recv_batch = cfg.recv_batch;
  ropt.send_batch = cfg.send_batch;
  ropt.corrupt_tx_per_million = plan.corrupt_per_million;
  ropt.corrupt_seed = plan.seed;
  plan.corrupt_per_million = 0;  // corruption handled at the frame layer
  auto rt = std::make_unique<runtime::RealRuntime>(ropt);
  runtime::RealRuntime* control = rt.get();
  for (ProcessId p = 0; p < total; ++p) {
    if (p == cfg.id) continue;
    const std::string& ep = cfg.peers[p];
    const std::size_t colon = ep.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "peer %u is not ip:port: %s\n", p, ep.c_str());
      return 2;
    }
    control->add_peer(
        p, ep.substr(0, colon),
        static_cast<std::uint16_t>(
            std::strtoul(ep.c_str() + colon + 1, nullptr, 10)));
  }

  sim::World world(cfg.seed, std::move(rt));
  SgxUsigDirectory usigs(world.keys());
  world.provision(total);
  if (plan.any_faults()) world.install_fault_plan(plan);
  // Materialize replica enclaves in id order so every process derives the
  // same key registry (see DESIGN.md §13).
  for (ProcessId p = 0; p < cfg.replicas; ++p) usigs.enclave_for(p);

  MinBftReplica::Options opt;
  opt.f = f;
  for (ProcessId p = 0; p < cfg.replicas; ++p) opt.replicas.push_back(p);
  if (cfg.vc_timeout_ticks != 0)
    opt.view_change_timeout = cfg.vc_timeout_ticks;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  if (cfg.id < cfg.replicas) {
    bool recovering = false;
    if (!cfg.durable_dir.empty()) {
      // A non-empty image on disk means this OS process is a restarted
      // incarnation: boot through on_recover (reload image, announce
      // RECOVER, state-transfer past it) instead of on_start.
      auto store =
          std::make_unique<runtime::FileDurableStore>(cfg.durable_dir);
      runtime::FileDurableStore* durable = store.get();
      recovering = durable->size() > 0;
      trusted::UsigEnclave& enclave = usigs.enclave_for(cfg.id);
      if (!cfg.volatile_usig) {
        // Counter-then-send ordering: reload the sealed counter from the
        // last incarnation, then write every advance through before the
        // UI can leave the enclave. With --volatile-usig neither happens,
        // so a restart rewinds the counter — the forkable configuration.
        if (const Bytes* sealed = durable->get("usig/sealed"))
          enclave.load_state(*sealed);
        enclave.set_nvram([durable](const Bytes& sealed) {
          durable->put("usig/sealed", sealed);
        });
      }
      world.install_durable(cfg.id, std::move(store));
      if (recovering) world.boot_recovering(cfg.id);
    }
    auto& replica = world.spawn_at<MinBftReplica>(
        cfg.id, opt, usigs, std::make_unique<KvStateMachine>());
    world.start();
    std::printf("replica %u: listening on %s (port %u), n=%zu f=%zu%s\n",
                cfg.id, cfg.listen.c_str(), control->bound_port(),
                cfg.replicas, f,
                recovering ? " (recovering from durable image)" : "");
    std::fflush(stdout);
    // A replica whose receiver thread died is deaf: its loop would keep
    // running (and answering nothing) forever. Exit 4 instead so cluster
    // harnesses see a failed member, not a mysteriously silent one.
    world.run_until(
        [control] {
          return g_stop != 0 || control->stats().receiver_dead;
        },
        SIZE_MAX);
    const auto us = control->udp_stats();
    if (us.receiver_dead) {
      std::fprintf(stderr,
                   "replica %u: UDP receiver died (see warning above); "
                   "refusing to serve deaf\n",
                   cfg.id);
      return 4;
    }
    std::printf("replica %u: view=%llu executed=%llu digest=%s "
                "recoveries=%llu malformed=%llu corrupt_tx=%llu chains=%s\n",
                cfg.id, static_cast<unsigned long long>(replica.view()),
                static_cast<unsigned long long>(replica.executed_count()),
                to_hex(ByteSpan(replica.state_digest().data(), 8)).c_str(),
                static_cast<unsigned long long>(replica.recoveries()),
                static_cast<unsigned long long>(us.frames_malformed),
                static_cast<unsigned long long>(us.frames_corrupt_tx),
                chain_samples(replica.execution_log(),
                              cfg.chain_interval != 0
                                  ? cfg.chain_interval
                                  : opt.checkpoint_interval).c_str());
    return 0;
  }

  SmrClient::Options copt;
  copt.replicas = opt.replicas;
  copt.f = f;
  copt.max_attempts = cfg.max_attempts;
  // Deterministic jitter de-synchronizes resends across a client fleet;
  // harmless for a single client, vital under chaos (all clients backing
  // off in lockstep re-collide forever).
  copt.resend_jitter = 64;
  copt.think_ticks = cfg.think_ticks;
  auto& client = world.spawn_at<SmrClient>(cfg.id, copt);
  for (std::uint64_t i = 0; i < cfg.requests; ++i) {
    const std::string key = "k" + std::to_string(i % 3);
    if (i % 3 == 2)
      client.submit(KvStateMachine::get_op(key));
    else
      client.submit(KvStateMachine::put_op(key, "v" + std::to_string(i)));
  }
  world.start();
  std::printf("client %u: %llu requests against %zu replicas\n", cfg.id,
              static_cast<unsigned long long>(cfg.requests), cfg.replicas);
  std::fflush(stdout);

  // Give-up timer in Clock ticks, so the predicate needs no wall clock.
  const Time deadline_ticks = cfg.timeout_s * 1'000'000 / cfg.tick_us;
  world.run_until(
      [&] {
        return g_stop != 0 ||
               client.completed() + client.gave_up() >= cfg.requests ||
               world.now() > deadline_ticks ||
               control->stats().receiver_dead;
      },
      SIZE_MAX);

  const auto us = control->udp_stats();
  if (us.receiver_dead && client.completed() < cfg.requests) {
    std::fprintf(stderr, "client %u: UDP receiver died; aborting\n", cfg.id);
    return 4;
  }
  std::printf("client %u: completed=%llu gave_up=%llu frames_sent=%llu "
              "frames_received=%llu malformed=%llu\n",
              cfg.id, static_cast<unsigned long long>(client.completed()),
              static_cast<unsigned long long>(client.gave_up()),
              static_cast<unsigned long long>(us.frames_sent),
              static_cast<unsigned long long>(us.frames_received),
              static_cast<unsigned long long>(us.frames_malformed));
  // Distinct exit codes so harnesses can tell "cluster never answered and
  // the client gave up cleanly" (3) from "ran out of wall clock with work
  // still in flight" (1).
  if (client.completed() >= cfg.requests) return 0;
  return client.gave_up() > 0 ? 3 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc <= 1) return run_sim_demo();
  RealConfig cfg;
  if (!parse_args(argc, argv, cfg)) {
    usage(argv[0]);
    return 2;
  }
  return run_real(cfg);
}
