// A Byzantine fault tolerant key-value store on trusted hardware.
//
// Runs a MinBFT replica group (n = 2f+1 = 3, each replica holding a
// simulated SGX USIG enclave), serves a client workload, then crashes the
// primary mid-run and shows the view change recovering — all inside the
// deterministic simulator.
//
// Build & run:  ./build/examples/minbft_kv
#include <cstdio>

#include "agreement/minbft.h"
#include "agreement/state_machines.h"
#include "sim/adversaries.h"
#include "wire/channels.h"

using namespace unidir;
using namespace unidir::agreement;

int main() {
  constexpr std::size_t kF = 1;
  constexpr std::size_t kN = 2 * kF + 1;

  sim::World world(/*seed=*/7,
                   std::make_unique<sim::RandomDelayAdversary>(1, 6));
  SgxUsigDirectory usigs(world.keys());

  MinBftReplica::Options options;
  options.f = kF;
  for (ProcessId i = 0; i < kN; ++i) options.replicas.push_back(i);

  std::vector<MinBftReplica*> replicas;
  for (std::size_t i = 0; i < kN; ++i)
    replicas.push_back(&world.spawn<MinBftReplica>(
        options, usigs, std::make_unique<KvStateMachine>()));

  SmrClient::Options copt;
  copt.replicas = options.replicas;
  copt.f = kF;
  auto& client = world.spawn<SmrClient>(copt);

  std::printf("MinBFT KV store: n=%zu replicas tolerate f=%zu Byzantine "
              "(PBFT would need %zu)\n\n",
              kN, kF, 3 * kF + 1);

  auto put = [&](std::string key, std::string value) {
    client.submit(KvStateMachine::put_op(key, value),
                  [key, value, &world](const Bytes&) {
                    std::printf("  t=%-5llu PUT %s=%s committed\n",
                                static_cast<unsigned long long>(world.now()),
                                key.c_str(), value.c_str());
                  });
  };
  auto get = [&](std::string key) {
    client.submit(KvStateMachine::get_op(key),
                  [key, &world](const Bytes& result) {
                    std::printf("  t=%-5llu GET %s -> \"%s\"\n",
                                static_cast<unsigned long long>(world.now()),
                                key.c_str(), string_of(result).c_str());
                  });
  };

  put("language", "c++20");
  put("paper", "classifying trusted hardware");
  get("language");
  put("venue", "PODC 2021");
  get("venue");

  world.start();
  // Serve the first couple of requests under the original primary…
  world.run_until([&] { return client.completed() >= 2; });
  std::printf("\n  t=%-5llu *** crashing the primary (replica 0) ***\n\n",
              static_cast<unsigned long long>(world.now()));
  world.crash(0);
  world.run_to_quiescence();

  std::puts("");
  std::printf("client completed %llu/5 requests\n",
              static_cast<unsigned long long>(client.completed()));
  for (auto* r : replicas) {
    if (!world.correct(r->id())) continue;
    std::printf("replica %u: view=%llu, executed %llu commands, state "
                "digest %s…\n",
                r->id(), static_cast<unsigned long long>(r->view()),
                static_cast<unsigned long long>(r->executed_count()),
                to_hex(ByteSpan(r->state_digest().data(), 8)).c_str());
  }

  // The safety property, checked explicitly:
  std::vector<std::pair<ProcessId, const ExecutionLog*>> logs;
  for (auto* r : replicas)
    if (world.correct(r->id()))
      logs.emplace_back(r->id(), &r->execution_log());
  const auto divergence = check_execution_consistency(logs);
  std::printf("execution logs prefix-consistent: %s\n",
              divergence ? divergence->c_str() : "yes");

  // The typed wire layer accounts every protocol message by channel and
  // type — no instrumentation in the protocol code itself.
  std::puts("\nwire traffic on the MinBFT protocol channel:");
  const wire::ChannelStats& ws = world.wire_stats().channel(wire::kMinBftCh);
  for (const auto& [tag, t] : ws.types)
    std::printf("  %-18s sent=%-4llu received=%-4llu bytes_sent=%llu\n",
                t.name, static_cast<unsigned long long>(t.sent),
                static_cast<unsigned long long>(t.received),
                static_cast<unsigned long long>(t.bytes_sent));
  std::printf("  dropped: malformed=%llu unknown_tag=%llu filtered=%llu\n",
              static_cast<unsigned long long>(ws.dropped_malformed),
              static_cast<unsigned long long>(ws.dropped_unknown_tag),
              static_cast<unsigned long long>(ws.dropped_filtered));
  return divergence ? 1 : 0;
}
