// Quickstart: the library in five minutes.
//
//  1. Build a simulated asynchronous world of processes.
//  2. Give each process a TrInc trinket and exchange attested messages —
//     non-equivocation from trusted hardware.
//  3. Run sequenced reliable broadcast from *unidirectional rounds* over
//     simulated SWMR shared memory — the paper's Algorithm 1 — and watch
//     every process deliver the same stream.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "broadcast/srb_from_uni.h"
#include "rounds/shmem_uni_round.h"
#include "sim/adversaries.h"
#include "trusted/trinc.h"
#include "wire/channels.h"

using namespace unidir;

namespace {

/// A process hosting an Algorithm-1 SRB endpoint over shared memory.
class Node final : public sim::Process {
 public:
  std::unique_ptr<rounds::ShmemUniRoundDriver> driver;
  std::unique_ptr<broadcast::UniSrbEndpoint> srb;
  std::vector<Bytes> to_broadcast;

 protected:
  void on_start() override {
    srb->set_deliver([this](const broadcast::Delivery& d) {
      std::printf("  node %u delivered (sender=%u, seq=%llu): \"%s\"\n", id(),
                  d.sender, static_cast<unsigned long long>(d.seq),
                  string_of(d.message).c_str());
    });
    for (auto& m : to_broadcast) srb->broadcast(m);
    srb->start();
  }
};

}  // namespace

int main() {
  std::puts("== 1. trusted hardware: TrInc non-equivocation ==");
  {
    crypto::KeyRegistry keys;
    trusted::TrincAuthority authority(keys);
    trusted::Trinket trinket = authority.make_trinket(/*owner=*/0);

    const auto a1 = trinket.attest(1, bytes_of("transfer $10 to alice"));
    std::printf("  attest(c=1): %s\n", a1 ? "ok" : "refused");
    const auto a2 = trinket.attest(1, bytes_of("transfer $10 to bob"));
    std::printf("  attest(c=1) again with a DIFFERENT message: %s  "
                "<- equivocation prevented by the device\n",
                a2 ? "ok (BUG!)" : "refused");
    std::printf("  anyone can check the first attestation: %s\n",
                authority.check(*a1, 0) ? "valid" : "invalid");
  }

  std::puts("");
  std::puts("== 2. SRB from unidirectional rounds (Algorithm 1) ==");
  std::puts("   3 processes, t=1, over simulated SWMR shared memory:");
  {
    // A deterministic world: same seed, same execution, every run.
    sim::World world(/*seed=*/2026,
                     std::make_unique<sim::RandomDelayAdversary>(1, 4));
    shmem::MemoryHost memory(world.simulator(), sim::Rng(7));
    rounds::ShmemRoundBoard board(/*n=*/3);

    std::vector<Node*> nodes;
    for (ProcessId i = 0; i < 3; ++i) {
      auto& node = world.spawn<Node>();
      node.driver = std::make_unique<rounds::ShmemUniRoundDriver>(
          memory, board, i);
      node.srb = std::make_unique<broadcast::UniSrbEndpoint>(
          node, *node.driver, /*n=*/3, /*t=*/1);
      nodes.push_back(&node);
    }
    nodes[0]->to_broadcast = {bytes_of("block #1"), bytes_of("block #2")};
    nodes[2]->to_broadcast = {bytes_of("hello from node 2")};

    world.start();
    world.run_to_quiescence();

    std::printf("  done in %llu virtual ticks, %llu rounds at node 0\n",
                static_cast<unsigned long long>(world.now()),
                static_cast<unsigned long long>(nodes[0]->srb->rounds_run()));

    // Every byte that crossed a protocol boundary went through the typed
    // wire layer; the World keeps per-channel, per-message-type counters.
    // Algorithm 1's slot payloads ride shared memory, not the network, so
    // they are accounted under a pseudo-channel.
    const auto& ws = world.wire_stats().channel(wire::kUniSrbPayloadCh);
    std::printf("  wire: %llu slot payloads decoded, %llu dropped as "
                "malformed\n",
                static_cast<unsigned long long>(ws.received),
                static_cast<unsigned long long>(ws.dropped_malformed));
  }
  std::puts("");
  std::puts("next steps: examples/minbft_kv (BFT key-value store),");
  std::puts("            examples/separation_demo (the impossibility proof, live)");
  return 0;
}
